//! Device-group scheduling: one query, many devices.
//!
//! The pool scheduler in [`crate::sched`] places each query on a single
//! device; graphs larger than one device's memory can only be served by UM
//! oversubscription. This module serves a query *across* a device group
//! with [`etagraph::sharded`]: the graph is partitioned by the registry
//! ([`crate::registry::GraphRegistry::partition`]), admission sizes the
//! largest member's footprint — halo replicas included — and dispatch
//! acquires and releases whole groups **atomically**: every member is busy
//! from dispatch to the query's completion (or to the fault that killed
//! it), so a group can never be half-claimed by two queries.
//!
//! Fault recovery reuses the pool ladder, adapted to groups: a
//! [`etagraph::sharded::ShardedError`] names the faulting member, which is
//! quarantined immediately (a group fault stalls `group_size` devices, so
//! one strike is enough); the query's newest global snapshot is parked and,
//! after backoff, resumed on a **regrouped** set drawn from the remaining
//! healthy members — the group-shape-agnostic checkpoint is what makes the
//! regroup legal. A query that exhausts its retries is answered by the CPU
//! reference, `degraded: true`, exactly like the pool path. Nothing is
//! ever lost.
//!
//! Fault windows are evaluated on each launch's device clock (members get a
//! fresh simulated device per acquisition, since partitioned residency is
//! per-query): a window at `[0, end)` re-arms on every launch, so permanent
//! faults stay permanent and recovery must come from regrouping, not from
//! waiting out the window on the same member.

use crate::qos::{QosConfig, QosState};
use crate::registry::GraphRegistry;
use crate::report::{
    BatchRecord, DeviceStats, FaultEvent, GroupStats, QuarantineRecord, RequestRecord, ServeReport,
};
use crate::request::{RejectReason, Rejection, Request};
use eta_ckpt::{digest_words, Checkpoint, CkptCtl, CkptSink, CkptStore};
use eta_fault::FaultPlan;
use eta_graph::reference;
use eta_mem::{Ns, PeerFabric};
use eta_prof::{Profile, Profiler, Track};
use eta_sim::{Device, GpuConfig};
use etagraph::sharded::{run_sharded_ckpt, ShardedRunResult};
use etagraph::{Algorithm, EtaConfig, QueryError};
use std::collections::BTreeMap;

/// Shape of a group-serving service.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Devices in the pool (the group is drawn from these).
    pub devices: usize,
    /// Members acquired per query. A regrouped resume may run on fewer
    /// when quarantines shrink the healthy set.
    pub group_size: usize,
    pub gpu: GpuConfig,
    pub eta: EtaConfig,
    /// Bounded queue size; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Per-device fault plan, installed on each member at every launch.
    pub faults: FaultPlan,
    /// Device-fault retries per query before the CPU fallback answers it.
    pub max_retries: u32,
    /// First retry delay; doubles per retry.
    pub backoff_base_ns: Ns,
    /// How long a faulted member sits out of dispatch. Group faults
    /// quarantine on the first strike.
    pub quarantine_ns: Ns,
    /// Snapshot interval in supersteps (0 = checkpointing off; a faulted
    /// query then retries from scratch on the regrouped set).
    pub checkpoint_interval: u32,
    /// Overload control. Only the retry budget applies to group serving
    /// (regroup-resume retries draw from the same budget as pool
    /// retries); the default disables it and is byte-inert.
    pub qos: QosConfig,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            devices: 2,
            group_size: 2,
            gpu: GpuConfig::default_preset(),
            eta: EtaConfig::paper(),
            queue_capacity: 256,
            faults: FaultPlan::default(),
            max_retries: 2,
            backoff_base_ns: 50_000,
            quarantine_ns: 2_000_000,
            checkpoint_interval: 0,
            qos: QosConfig::default(),
        }
    }
}

/// One pool member: scheduler-visible clock state plus the device of its
/// most recent launch (kept for post-run metric and profile inspection).
pub struct GroupMember {
    pub id: usize,
    pub dev: Device,
    pub free_at: Ns,
    pub busy_ns: Ns,
    pub quarantined_until: Ns,
    pub faults: u32,
    /// Sharded queries this member served to completion.
    pub queries: u32,
}

/// A queued group query plus its ladder state.
struct GroupQueued {
    req: Request,
    retries: u32,
    not_before: Ns,
    /// Parked snapshot to resume from, if the last attempt checkpointed.
    ckpt_key: Option<u64>,
    /// Members of the attempt that parked the snapshot (detects migration).
    from_members: Vec<usize>,
}

/// Per-composition accumulation for [`GroupStats`].
#[derive(Default)]
struct GroupAccum {
    queries: u32,
    busy_ns: Ns,
    exchanged_bytes: u64,
    supersteps: u64,
}

struct GroupRunState {
    queue: Vec<GroupQueued>,
    store: CkptStore,
    records: Vec<RequestRecord>,
    rejections: Vec<Rejection>,
    batches: Vec<BatchRecord>,
    fault_events: Vec<FaultEvent>,
    quarantines: Vec<QuarantineRecord>,
    groups: BTreeMap<Vec<u32>, GroupAccum>,
    checkpoints: u32,
    resumes: u32,
    migrations: u32,
    work_saved_iterations: u64,
    qos: QosState,
}

/// The group-serving service. BFS-only, like the pool scheduler: the
/// request vocabulary, CPU fallback, and digest fingerprints are shared
/// with [`crate::sched::Service`].
pub struct GroupService<'r> {
    registry: &'r mut GraphRegistry,
    cfg: GroupConfig,
    members: Vec<GroupMember>,
    prof: Profiler,
}

impl<'r> GroupService<'r> {
    /// The registry is taken mutably: partitioned residency is computed
    /// through its partition cache.
    pub fn new(registry: &'r mut GraphRegistry, cfg: GroupConfig) -> Self {
        assert!(cfg.group_size >= 1, "need at least one member per group");
        assert!(
            cfg.group_size <= cfg.devices,
            "group cannot exceed the pool"
        );
        let members = (0..cfg.devices)
            .map(|id| GroupMember {
                id,
                dev: Device::new(cfg.gpu),
                free_at: 0,
                busy_ns: 0,
                quarantined_until: 0,
                faults: 0,
                queries: 0,
            })
            .collect();
        let prof = Profiler::new(cfg.gpu.profiling);
        GroupService {
            registry,
            cfg,
            members,
            prof,
        }
    }

    pub fn members(&self) -> &[GroupMember] {
        &self.members
    }

    /// Scheduler events plus each member's most recent launch. Peer-fabric
    /// spans appear on [`Track::Peer`] in the sending member's process.
    pub fn profile(&self) -> Profile {
        let mut p = Profile::new();
        p.push("scheduler", self.prof.events().to_vec());
        for m in &self.members {
            p.push(&format!("device{}", m.id), m.dev.mem.prof.events().to_vec());
        }
        p
    }

    /// Serves `trace` (sorted by arrival) to completion. Deterministic.
    pub fn run(&mut self, trace: &[Request]) -> ServeReport {
        debug_assert!(
            trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "trace must be sorted by arrival time"
        );
        let mut st = GroupRunState {
            queue: Vec::new(),
            store: CkptStore::new(),
            records: Vec::new(),
            rejections: Vec::new(),
            batches: Vec::new(),
            fault_events: Vec::new(),
            quarantines: Vec::new(),
            groups: BTreeMap::new(),
            checkpoints: 0,
            resumes: 0,
            migrations: 0,
            work_saved_iterations: 0,
            qos: QosState::new(&self.cfg.qos),
        };
        let mut next = 0usize;
        let mut now: Ns = 0;
        loop {
            while next < trace.len() && trace[next].arrival_ns <= now {
                self.admit(&trace[next], now, &mut st);
                next += 1;
            }
            if self.dispatchable_index(now, &st).is_some() {
                self.dispatch(now, &mut st);
                continue;
            }
            let t_arrival = trace.get(next).map(|r| r.arrival_ns);
            let t_member = if st.queue.is_empty() {
                None
            } else {
                self.members
                    .iter()
                    .flat_map(|m| [m.free_at, m.quarantined_until])
                    .filter(|&t| t > now)
                    .min()
            };
            let t_backoff = st
                .queue
                .iter()
                .map(|q| q.not_before)
                .filter(|&t| t > now)
                .min();
            match [t_arrival, t_member, t_backoff].into_iter().flatten().min() {
                Some(t) => now = t,
                None => break,
            }
        }
        debug_assert!(st.queue.is_empty(), "no query may be stranded");
        self.finish(st)
    }

    fn healthy_idle(&self, now: Ns) -> Vec<usize> {
        self.members
            .iter()
            .filter(|m| m.free_at <= now && m.quarantined_until <= now)
            .map(|m| m.id)
            .collect()
    }

    /// Earliest-arrival queued entry that can run right now: a fresh query
    /// needs a full group, a parked one regroups on whatever healthy
    /// members exist (at least one).
    fn dispatchable_index(&self, now: Ns, st: &GroupRunState) -> Option<usize> {
        let idle = self.healthy_idle(now).len();
        st.queue
            .iter()
            .enumerate()
            .filter(|(_, q)| {
                let need = if q.ckpt_key.is_some() {
                    1
                } else {
                    self.cfg.group_size
                };
                q.not_before <= now && idle >= need
            })
            .min_by_key(|(_, q)| (q.req.arrival_ns, q.req.id))
            .map(|(i, _)| i)
    }

    fn admit(&mut self, req: &Request, now: Ns, st: &mut GroupRunState) {
        let prof = &mut self.prof;
        let rejections = &mut st.rejections;
        let mut reject = |reason: RejectReason| {
            if prof.is_enabled() {
                prof.instant(
                    Track::Sched,
                    "reject",
                    now,
                    vec![("id", req.id.into()), ("reason", reason.name().into())],
                );
            }
            rejections.push(Rejection {
                id: req.id,
                reason,
                at_ns: now,
            })
        };
        let Some(csr) = self.registry.get(&req.graph) else {
            return reject(RejectReason::UnknownGraph);
        };
        if req.source as usize >= csr.n() {
            return reject(RejectReason::SourceOutOfRange);
        }
        // Partitioned admission: the largest member's footprint — halo
        // replicas included — must fit a device. A query a full group
        // cannot host can never be served; refuse it upfront.
        let capacity = self.members[0].dev.mem.capacity_bytes();
        let fp = self
            .registry
            .group_footprint_bytes(&req.graph, self.cfg.group_size as u32, &self.cfg.eta)
            // lint: allow(L-PANIC): admit() only runs after the UnknownGraph check on the same name
            .expect("graph presence checked above");
        if fp > capacity {
            return reject(RejectReason::AdmissionDenied);
        }
        if st.queue.len() >= self.cfg.queue_capacity {
            return reject(RejectReason::QueueFull);
        }
        st.queue.push(GroupQueued {
            req: req.clone(),
            retries: 0,
            not_before: now,
            ckpt_key: None,
            from_members: Vec::new(),
        });
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Sched,
                "enqueue",
                now,
                vec![
                    ("id", req.id.into()),
                    ("graph", req.graph.as_str().into()),
                    ("depth", st.queue.len().into()),
                ],
            );
        }
    }

    /// One group dispatch: acquire members, run the sharded query, settle
    /// the outcome. Acquisition is atomic — every chosen member's clock is
    /// advanced to the same completion (or fault) time before the next
    /// scheduling decision happens.
    fn dispatch(&mut self, now: Ns, st: &mut GroupRunState) {
        let idx = self
            .dispatchable_index(now, st)
            // lint: allow(L-PANIC): dispatch() is gated on dispatchable_index() returning this entry
            .expect("caller checked dispatchability");
        let q = st.queue.remove(idx);
        let resume_ck = q.ckpt_key.and_then(|k| st.store.take(k));
        let idle = self.healthy_idle(now);
        let size = if resume_ck.is_some() {
            idle.len().min(self.cfg.group_size).max(1)
        } else {
            self.cfg.group_size
        };
        let ids: Vec<usize> = idle.into_iter().take(size).collect();

        let graph = q.req.graph.clone();
        let digest = self
            .registry
            .get(&graph)
            // lint: allow(L-PANIC): partition cache was populated for this (name, devices) at admission
            .expect("validated at admission")
            .digest();
        let mut devices: Vec<Device> = ids
            .iter()
            .map(|&i| {
                let mut d = Device::new(self.cfg.gpu);
                d.install_faults(&self.cfg.faults, i as u32);
                d
            })
            .collect();
        let mut fabric = PeerFabric::nvlink(size as u32);
        let mut sink = CkptSink::every(self.cfg.checkpoint_interval);
        let result = {
            let part = self
                .registry
                .partition(&graph, size as u32)
                // lint: allow(L-PANIC): partition cache was populated for this (name, devices) at admission
                .expect("validated at admission");
            let ctl = match &resume_ck {
                Some(ck) => CkptCtl::resuming(&mut sink, ck, digest),
                None => CkptCtl::with_sink(&mut sink, digest),
            };
            run_sharded_ckpt(
                &mut devices,
                &mut fabric,
                part,
                q.req.source,
                Algorithm::Bfs,
                &self.cfg.eta,
                ctl,
            )
        };
        for (d, &i) in devices.into_iter().zip(&ids) {
            self.members[i].dev = d;
        }
        st.checkpoints += sink.taken;

        match result {
            Ok(r) => self.settle_success(now, &ids, q, r, resume_ck, st),
            Err(e) => match e.error {
                QueryError::DeviceFault(fault) => {
                    let faulted = ids[e.shard as usize];
                    let fail_at = now + fault.at_ns;
                    for &i in &ids {
                        let m = &mut self.members[i];
                        m.busy_ns += fail_at - now;
                        m.free_at = fail_at;
                    }
                    let m = &mut self.members[faulted];
                    m.faults += 1;
                    m.quarantined_until = fail_at + self.cfg.quarantine_ns;
                    st.fault_events.push(FaultEvent {
                        device: faulted as u32,
                        kind: fault.kind.name().to_string(),
                        at_ns: fail_at,
                    });
                    st.quarantines.push(QuarantineRecord {
                        device: faulted as u32,
                        from_ns: fail_at,
                        until_ns: fail_at + self.cfg.quarantine_ns,
                    });
                    if self.prof.is_enabled() {
                        self.prof.instant(
                            Track::Fault,
                            "group_member_fault",
                            fail_at,
                            vec![
                                ("device", (faulted as u32).into()),
                                ("kind", fault.kind.name().into()),
                                // lint: allow(L-CAST-TRUNC): group size is bounded by cfg.devices, far below u32::MAX
                                ("group", (ids.len() as u32).into()),
                            ],
                        );
                    }
                    if q.retries >= self.cfg.max_retries {
                        self.cpu_fallback(&q, now, fail_at, faulted as u32, st);
                        return;
                    }
                    // A regroup-resume is a retry: it draws from the same
                    // qos budget as the pool ladder, so correlated group
                    // faults cannot amplify load without bound.
                    if !st.qos.retry_try_take(&self.cfg.qos, fail_at) {
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Qos,
                                "retry_denied",
                                fail_at,
                                vec![("id", q.req.id.into())],
                            );
                        }
                        self.cpu_fallback(&q, now, fail_at, faulted as u32, st);
                        return;
                    }
                    // Park the newest snapshot: one taken during this
                    // attempt, else the one this attempt resumed from — the
                    // iterations it saved are still saved.
                    let parked = sink.take().or(resume_ck);
                    let ckpt_key = parked.map(|ck| {
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Ckpt,
                                "park",
                                fail_at,
                                vec![("id", q.req.id.into()), ("iteration", ck.iteration.into())],
                            );
                        }
                        st.store.put(ck)
                    });
                    let delay = self.cfg.backoff_base_ns << q.retries;
                    st.queue.push(GroupQueued {
                        req: q.req,
                        retries: q.retries + 1,
                        not_before: (fail_at + delay).max(now + 1),
                        ckpt_key,
                        from_members: ids,
                    });
                }
                // The group could not even allocate its shards (capacity
                // raced the admission estimate). Typed refusal, like the
                // pool path.
                QueryError::Mem(_) => {
                    st.rejections.push(Rejection {
                        id: q.req.id,
                        reason: RejectReason::AdmissionDenied,
                        at_ns: now,
                    });
                }
                // A stale snapshot demotes the query to a from-scratch
                // retry; its backoff gate has already passed.
                QueryError::Checkpoint(_) => {
                    st.queue.push(GroupQueued {
                        req: q.req,
                        retries: q.retries,
                        not_before: now + 1,
                        ckpt_key: None,
                        from_members: Vec::new(),
                    });
                }
                QueryError::SourceOutOfRange { .. } => {
                    unreachable!("sources validated at admission")
                }
            },
        }
    }

    fn settle_success(
        &mut self,
        now: Ns,
        ids: &[usize],
        q: GroupQueued,
        r: ShardedRunResult,
        resume_ck: Option<Checkpoint>,
        st: &mut GroupRunState,
    ) {
        let completion = now + r.total_ns;
        for &i in ids {
            let m = &mut self.members[i];
            m.busy_ns += r.total_ns;
            m.free_at = completion;
            m.queries += 1;
        }
        if resume_ck.is_some() {
            st.resumes += 1;
            st.work_saved_iterations += resume_ck.as_ref().map_or(0, |ck| ck.iteration) as u64;
            if ids != q.from_members {
                st.migrations += 1;
            }
        }
        let key: Vec<u32> = ids.iter().map(|&i| i as u32).collect();
        let acc = st.groups.entry(key).or_default();
        acc.queries += 1;
        acc.busy_ns += r.total_ns;
        acc.exchanged_bytes += r.exchanged_bytes;
        acc.supersteps += r.supersteps as u64;
        let leader = ids[0] as u32;
        st.batches.push(BatchRecord {
            device: leader,
            graph: q.req.graph.clone(),
            size: 1,
            dispatched_ns: now,
            started_ns: now,
            completed_ns: completion,
        });
        let reached = r.labels.iter().filter(|&&l| l != u32::MAX).count() as u32;
        st.records.push(RequestRecord {
            id: q.req.id,
            graph: q.req.graph.clone(),
            class: q.req.class,
            source: q.req.source,
            arrival_ns: q.req.arrival_ns,
            queue_wait_ns: now - q.req.arrival_ns,
            transfer_ns: r.total_ns.saturating_sub(r.kernel_ns),
            compute_ns: r.kernel_ns,
            latency_ns: completion - q.req.arrival_ns,
            batch_size: 1,
            device: leader,
            reached,
            levels_digest: digest_words(&[&r.labels]),
            deadline_met: q.req.deadline_ns.map(|d| completion <= d),
            degraded: false,
            retries: q.retries,
        });
        if self.prof.is_enabled() {
            self.prof.record(
                Track::Sched,
                "group_query",
                now,
                completion,
                vec![
                    ("graph", q.req.graph.as_str().into()),
                    // lint: allow(L-CAST-TRUNC): group size is bounded by cfg.devices, far below u32::MAX
                    ("group", (ids.len() as u32).into()),
                    ("exchanged_bytes", r.exchanged_bytes.into()),
                ],
            );
        }
    }

    /// Last rung: the CPU reference answers a query whose retry budget is
    /// exhausted — same cost model as the pool scheduler's fallback.
    fn cpu_fallback(
        &mut self,
        q: &GroupQueued,
        now: Ns,
        fail_at: Ns,
        device: u32,
        st: &mut GroupRunState,
    ) {
        // lint: allow(L-PANIC): the queued request passed the UnknownGraph check at admission
        let csr = self.registry.get(&q.req.graph).expect("validated");
        let levels = reference::bfs(csr, q.req.source);
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
        let cpu_ns = 10_000 + 2 * csr.n() as Ns + 4 * csr.m() as Ns;
        let completion = fail_at + cpu_ns;
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Fault,
                "cpu_fallback",
                fail_at,
                vec![("id", q.req.id.into()), ("cpu_ns", cpu_ns.into())],
            );
        }
        st.records.push(RequestRecord {
            id: q.req.id,
            graph: q.req.graph.clone(),
            class: q.req.class,
            source: q.req.source,
            arrival_ns: q.req.arrival_ns,
            queue_wait_ns: now - q.req.arrival_ns,
            transfer_ns: 0,
            compute_ns: cpu_ns,
            latency_ns: completion - q.req.arrival_ns,
            batch_size: 1,
            device,
            reached,
            levels_digest: digest_words(&[&levels]),
            deadline_met: q.req.deadline_ns.map(|d| completion <= d),
            degraded: true,
            retries: q.retries,
        });
    }

    fn finish(&self, st: GroupRunState) -> ServeReport {
        let GroupRunState {
            mut records,
            mut rejections,
            batches,
            fault_events,
            quarantines,
            groups,
            checkpoints,
            resumes,
            migrations,
            work_saved_iterations,
            qos,
            ..
        } = st;
        records.sort_by_key(|r| r.id);
        rejections.sort_by_key(|r| r.id);
        let makespan_ns = batches
            .iter()
            .map(|b| b.completed_ns)
            .chain(records.iter().map(|r| r.arrival_ns + r.latency_ns))
            .max()
            .unwrap_or(0);
        let throughput_qps = if makespan_ns == 0 {
            0.0
        } else {
            records.len() as f64 / (makespan_ns as f64 / 1e9)
        };
        let devices = self
            .members
            .iter()
            .map(|m| DeviceStats {
                device: m.id as u32,
                busy_ns: m.busy_ns,
                utilization: if makespan_ns == 0 {
                    0.0
                } else {
                    m.busy_ns as f64 / makespan_ns as f64
                },
                uploads: m.queries,
                evictions: 0,
            })
            .collect();
        let groups = groups
            .into_iter()
            .map(|(devices, a)| GroupStats {
                devices,
                queries: a.queries,
                busy_ns: a.busy_ns,
                utilization: if makespan_ns == 0 {
                    0.0
                } else {
                    a.busy_ns as f64 / makespan_ns as f64
                },
                exchanged_bytes: a.exchanged_bytes,
                supersteps: a.supersteps,
                bytes_per_superstep: a.exchanged_bytes.checked_div(a.supersteps).unwrap_or(0),
            })
            .collect();
        let degraded = records.iter().filter(|r| r.degraded).count() as u32;
        let denom = records.len() + rejections.len();
        let availability = if denom == 0 {
            1.0
        } else {
            records.len() as f64 / denom as f64
        };
        ServeReport {
            // lint: allow(L-CAST-TRUNC): one record per request; traces are far below u32::MAX
            completed: records.len() as u32,
            // lint: allow(L-CAST-TRUNC): one rejection per request; traces are far below u32::MAX
            rejected: rejections.len() as u32,
            degraded,
            availability,
            makespan_ns,
            throughput_qps,
            records,
            rejections,
            batches,
            devices,
            fault_events,
            quarantines,
            checkpoints,
            resumes,
            migrations,
            work_saved_iterations,
            groups,
            qos: if self.cfg.qos.any_enabled() {
                Some(qos.stats)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use eta_graph::generate::{rmat, RmatConfig};

    fn registry_with(names: &[(&str, u64)]) -> GraphRegistry {
        let mut reg = GraphRegistry::new();
        for &(name, seed) in names {
            reg.insert(name, rmat(&RmatConfig::paper(10, 8_000, seed)));
        }
        reg
    }

    fn req(id: u32, graph: &str, source: u32, arrival_ns: Ns) -> Request {
        Request {
            id,
            graph: graph.to_string(),
            class: Priority::Batch,
            source,
            arrival_ns,
            deadline_ns: None,
            timeout_ns: None,
        }
    }

    #[test]
    fn group_queries_answer_like_the_reference() {
        let mut reg = registry_with(&[("g", 1)]);
        let expect: Vec<u64> = (0..3u32)
            .map(|s| digest_words(&[&reference::bfs(reg.get("g").unwrap(), s)]))
            .collect();
        let trace: Vec<Request> = (0..3).map(|i| req(i, "g", i, 0)).collect();
        let cfg = GroupConfig {
            devices: 2,
            group_size: 2,
            ..GroupConfig::default()
        };
        let report = GroupService::new(&mut reg, cfg).run(&trace);
        assert_eq!(report.completed, 3);
        assert_eq!(report.degraded, 0);
        for r in &report.records {
            assert_eq!(r.levels_digest, expect[r.source as usize], "query {}", r.id);
        }
        assert_eq!(report.groups.len(), 1, "one composition: {{0,1}}");
        let g = &report.groups[0];
        assert_eq!(g.devices, vec![0, 1]);
        assert_eq!(g.queries, 3);
        assert!(g.exchanged_bytes > 0, "halo traffic crossed the fabric");
        assert!(g.bytes_per_superstep > 0);
        assert!(g.utilization > 0.0 && g.utilization <= 1.0);
    }

    #[test]
    fn groups_are_acquired_and_released_atomically() {
        let mut reg = registry_with(&[("g", 1)]);
        // Pool of 2, group of 2: two simultaneous queries must serialize —
        // a half-claimed group would let them overlap.
        let trace = vec![req(0, "g", 0, 0), req(1, "g", 5, 0)];
        let cfg = GroupConfig {
            devices: 2,
            group_size: 2,
            ..GroupConfig::default()
        };
        let report = GroupService::new(&mut reg, cfg).run(&trace);
        assert_eq!(report.completed, 2);
        assert_eq!(report.batches.len(), 2);
        let (a, b) = (&report.batches[0], &report.batches[1]);
        let (first, second) = if a.dispatched_ns <= b.dispatched_ns {
            (a, b)
        } else {
            (b, a)
        };
        assert!(
            second.dispatched_ns >= first.completed_ns,
            "second group query waited for the whole group"
        );
    }

    #[test]
    fn oversized_partitions_are_refused_at_admission() {
        use eta_shard::GraphPartition;
        let mut reg = registry_with(&[("g", 1)]);
        let cfg = GroupConfig::default();
        let csr = reg.get("g").unwrap().clone();
        let part = GraphPartition::vertex_range(&csr, 2);
        let explicit = cfg.eta.transfer.topology_is_explicit();
        let max_shard = part
            .shards
            .iter()
            .map(|s| s.footprint_bytes(cfg.eta.k, explicit))
            .max()
            .unwrap();
        // Regression for halo-blind admission: capacity sits between the
        // owned-only estimate (whole graph / group) and the true largest
        // member footprint. Sizing by owned ranges alone would admit — and
        // then OOM mid-flight; the halo-aware check must refuse upfront.
        let owned_only = max_shard
            - part
                .shards
                .iter()
                .map(|s| (s.halo.len() as u64) * 2 * 4) // halo label+tag words
                .max()
                .unwrap();
        assert!(owned_only < max_shard, "the halo replicas are what differ");
        let capacity = max_shard - 1;
        let gcfg = GroupConfig {
            gpu: GpuConfig::gtx1080ti_scaled(capacity),
            ..cfg
        };
        let report = GroupService::new(&mut reg, gcfg).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 0);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].reason, RejectReason::AdmissionDenied);
        // At exactly the largest member's footprint (plus topology slack
        // from the upload itself), the same query is admitted and served.
        let roomy = GroupConfig {
            gpu: GpuConfig::gtx1080ti_scaled(max_shard * 3),
            ..GroupConfig::default()
        };
        let report = GroupService::new(&mut reg, roomy).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn faulted_member_quarantines_and_the_query_regroups() {
        use eta_fault::HangFault;
        let mut reg = registry_with(&[("g", 1)]);
        let expect = digest_words(&[&reference::bfs(reg.get("g").unwrap(), 0)]);
        // Member 1 hangs instantly and permanently; pool of 3 with groups
        // of 2. The first attempt on {0, 1} faults, member 1 quarantines,
        // and the retry regroups on {0, 2} and completes on the devices.
        let plan = FaultPlan {
            hangs: vec![HangFault {
                device: 1,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 1_000,
            }],
            ..FaultPlan::default()
        };
        let cfg = GroupConfig {
            devices: 3,
            group_size: 2,
            faults: plan,
            checkpoint_interval: 2,
            ..GroupConfig::default()
        };
        let report = GroupService::new(&mut reg, cfg).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 1, "0 lost");
        assert_eq!(report.degraded, 0, "answered on devices, not the CPU");
        assert_eq!(report.records[0].levels_digest, expect, "0 wrong");
        assert_eq!(report.quarantines.len(), 1);
        assert_eq!(report.quarantines[0].device, 1);
        assert!(report.records[0].retries >= 1);
        let regrouped = report
            .groups
            .iter()
            .any(|g| g.devices == vec![0, 2] && g.queries == 1);
        assert!(regrouped, "the query completed on the regrouped set");
    }

    #[test]
    fn parked_snapshot_resumes_on_the_regrouped_set() {
        use eta_fault::HangFault;
        let mut reg = registry_with(&[("g", 1)]);
        let expect = digest_words(&[&reference::bfs(reg.get("g").unwrap(), 0)]);
        // A budget that admits the small early-superstep kernels but kills
        // the peak-frontier one: the interval-1 snapshot exists when member
        // 1 dies, so the regrouped retry resumes instead of restarting.
        let plan = FaultPlan {
            hangs: vec![HangFault {
                device: 1,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 40_000,
            }],
            ..FaultPlan::default()
        };
        let cfg = GroupConfig {
            devices: 3,
            group_size: 2,
            faults: plan,
            checkpoint_interval: 1,
            ..GroupConfig::default()
        };
        let report = GroupService::new(&mut reg, cfg).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.records[0].levels_digest, expect);
        assert!(
            report.checkpoints >= 1,
            "a snapshot was taken before the kill"
        );
        assert_eq!(report.resumes, 1, "the retry resumed from the snapshot");
        assert_eq!(report.migrations, 1, "and on a different member set");
        assert!(report.work_saved_iterations >= 1);
    }

    #[test]
    fn group_runs_are_deterministic() {
        let trace: Vec<Request> = (0..5)
            .map(|i| req(i, "g", 2 * i, (i as Ns) * 10_000))
            .collect();
        let run = || {
            let mut reg = registry_with(&[("g", 1)]);
            let cfg = GroupConfig {
                devices: 3,
                group_size: 2,
                faults: FaultPlan::seeded(11, 1, 30_000_000),
                checkpoint_interval: 2,
                ..GroupConfig::default()
            };
            let report = GroupService::new(&mut reg, cfg).run(&trace);
            serde_json::to_string(&report).expect("report serializes")
        };
        assert_eq!(run(), run(), "same config, same trace, same bytes");
    }
}
