//! `eta-serve` — a deterministic, simulated-time traversal query service on
//! top of the EtaGraph engine.
//!
//! The ROADMAP's north star is a system that serves heavy traffic from many
//! users; until now a query entered the repository only through one warm
//! [`etagraph::session::Session`]. This crate adds the missing layer: a
//! *stream* of traversal requests scheduled onto simulated devices.
//!
//! * [`registry`] — named graphs a tenant can query by name.
//! * [`pool`] — N simulated [`eta_sim::Device`]s, each with its own clock,
//!   per-graph device residency (topology + batch state), admission by
//!   allocation footprint, and LRU eviction when a new graph does not fit.
//! * [`sched`] — a priority + deadline-aware queue with backpressure
//!   (bounded queue, reject-with-reason), per-request timeouts, and BFS
//!   *source batching*: up to 32 same-graph requests coalesce into one
//!   [`etagraph::multi_bfs`] launch, so one topology read serves the batch.
//! * [`workload`] — an open-loop Poisson arrival generator (seeded SplitMix
//!   streams, no wall clock) for driving the service reproducibly.
//! * [`report`] — per-request latency decomposition (queue wait, transfer,
//!   compute) and per-device utilization, as plain serializable records;
//!   percentile math lives in `eta-bench`'s `stats` module.
//!
//! With a non-empty [`eta_fault::FaultPlan`] in [`ServeConfig::faults`],
//! the service survives injected device failures through a four-rung
//! recovery ladder: resume-from-checkpoint (below), per-request retry with
//! exponential backoff, quarantine of repeatedly-faulting devices, and a
//! last-resort CPU fallback that answers from `eta_graph::reference` with
//! `degraded: true`. The report then carries availability, fault events,
//! and quarantine windows. The default (empty) plan is inert and
//! byte-identical to the pre-fault service.
//!
//! With [`ServeConfig::checkpoint_interval`] `> 0`, running batches emit an
//! [`eta_ckpt::Checkpoint`] every N completed iterations; when a batch
//! faults, the scheduler parks each rider's newest snapshot in an
//! [`eta_ckpt::CkptStore`] and rung 0 of the ladder resumes it after
//! backoff — on the same device (a re-probe) or migrated to a healthy one,
//! since snapshots are device-independent host state. The report counts
//! `checkpoints`, `resumes`, `migrations`, and `work_saved_iterations`;
//! interval 0 (the default) disables the machinery and is byte-identical
//! to the pre-checkpoint service.
//!
//! With a non-default [`qos::QosConfig`] in [`ServeConfig::qos`], the
//! service gains overload control ([`qos`]): cost-model admission by
//! deadline feasibility (calibrated online from completed batches),
//! deterministic worst-first shedding at queue capacity, per-tenant
//! fair-share token buckets, a global retry budget over the recovery
//! ladder (denied retries degrade straight to the CPU fallback instead of
//! amplifying load), and brownout degradation of best-effort traffic
//! (demote + zero-copy) when the queue-delay EWMA crosses a threshold.
//! The default config disables every feature and is byte-inert.
//!
//! With [`group::GroupService`], one query runs across a device *group*
//! via `etagraph::sharded`: the registry admits **partitioned residency**
//! (cached [`eta_shard::GraphPartition`]s, halo-aware footprint sizing),
//! the scheduler acquires and releases whole groups atomically, and the
//! fault ladder regroups — a faulted member quarantines and the query
//! resumes from its group-shape-agnostic checkpoint on the remaining
//! healthy members. The report's `groups` entries carry per-composition
//! utilization and exchanged bytes per superstep.
//!
//! Everything is deterministic: the same registry, config, and trace produce
//! byte-identical reports, because all time is simulated and all randomness
//! is counter-based. With profiling on (`GpuConfig::with_profiling`), the
//! scheduler emits `enqueue`/`reject` instants and `batch` spans into an
//! `eta-prof` profile alongside each device's kernel and transfer events —
//! `Service::profile` merges them into one multi-process trace.
//!
//! ```
//! use eta_graph::generate::{rmat, RmatConfig};
//! use eta_serve::{GraphRegistry, ServeConfig, Service, WorkloadConfig};
//!
//! let mut registry = GraphRegistry::new();
//! registry.insert("toy", rmat(&RmatConfig::paper(10, 8_000, 1)));
//! let trace = eta_serve::poisson_trace(
//!     &registry,
//!     &["toy".to_string()],
//!     &WorkloadConfig { requests: 40, ..WorkloadConfig::default() },
//! );
//! let mut service = Service::new(&registry, ServeConfig::default());
//! let report = service.run(&trace);
//! assert_eq!(report.completed as usize + report.rejections.len(), 40);
//! ```

pub mod group;
pub mod pool;
pub mod qos;
pub mod registry;
pub mod report;
pub mod request;
pub mod sched;
pub mod workload;

pub use group::{GroupConfig, GroupService};
pub use pool::DeviceWorker;
pub use qos::{QosConfig, QosStats};
pub use registry::GraphRegistry;
pub use report::{
    BatchRecord, DeviceStats, FaultEvent, GroupStats, QuarantineRecord, RequestRecord, ServeReport,
};
pub use request::{Priority, RejectReason, Rejection, Request};
pub use sched::{Policy, ServeConfig, Service};
pub use workload::{poisson_trace, Arrival, WorkloadConfig};
