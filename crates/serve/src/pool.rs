//! The device pool: one simulated GPU per worker, each with its own clock,
//! per-graph residency, admission by allocation footprint, and LRU eviction.
//!
//! A graph becomes resident on a worker the first time a batch for it is
//! dispatched there: the topology is uploaded under the configured transfer
//! mode and a [`MultiBfsResources`] block is allocated once, then reused by
//! every subsequent batch (upload once, query many — the warm-session
//! economics of `etagraph::session`, multiplied across tenants). When a new
//! graph's footprint does not fit the device's remaining memory, the
//! least-recently-used unpinned resident graph is evicted until it does.

use etagraph::device_graph::DeviceGraph;
use etagraph::multi_bfs::{self, MultiBfsResources, MultiBfsResult};
use etagraph::{EtaConfig, QueryError, TransferMode};

use eta_ckpt::{Checkpoint, CkptCtl, CkptSink};
use eta_fault::FaultPlan;
use eta_graph::Csr;
use eta_mem::Ns;
use eta_sim::{Device, GpuConfig};
use std::collections::BTreeMap;

/// A graph's on-device state: topology plus reusable batch resources.
struct ResidentGraph {
    dg: DeviceGraph,
    multi: MultiBfsResources,
    /// Transfer mode the topology was uploaded under. A dispatch asking
    /// for a different mode (qos brownout re-routes best-effort batches to
    /// zero-copy) drops this residency and re-uploads under the new mode —
    /// the resident layout is mode-specific, so the two cannot be mixed.
    transfer: TransferMode,
    /// Content digest of the uploaded topology (checkpoint epoch guard:
    /// a snapshot taken against this graph only resumes where the digest
    /// matches, so migration can never land on the wrong graph version).
    digest: u64,
    /// LRU clock value of the last dispatch that used this graph.
    last_used: u64,
    /// Dispatches currently using this graph; pinned graphs are never
    /// evicted. (Dispatch is synchronous, so this guards the in-flight
    /// graph while *its own* upload triggers eviction of others.)
    pins: u32,
}

/// One simulated device plus its scheduler-visible state.
pub struct DeviceWorker {
    pub id: usize,
    pub dev: Device,
    /// The worker is idle at any `t >= free_at`.
    pub free_at: Ns,
    /// Total simulated time spent serving batches (drives utilization).
    pub busy_ns: Ns,
    /// Topology uploads performed (cold starts + re-uploads after eviction).
    pub uploads: u32,
    /// Resident graphs evicted to make room.
    pub evictions: u32,
    /// The scheduler keeps this device out of dispatch until this time
    /// (0 = never quarantined). Set after repeated faults; the device is
    /// re-probed by ordinary dispatch once the window passes.
    pub quarantined_until: Ns,
    /// Faults since the last successful batch; quarantine triggers when
    /// this reaches the configured threshold.
    pub consecutive_faults: u32,
    /// Total device faults observed over the whole run.
    pub faults: u32,
    resident: BTreeMap<String, ResidentGraph>,
    lru_tick: u64,
}

impl DeviceWorker {
    pub fn new(id: usize, gpu: GpuConfig) -> Self {
        DeviceWorker {
            id,
            dev: Device::new(gpu),
            free_at: 0,
            busy_ns: 0,
            uploads: 0,
            evictions: 0,
            quarantined_until: 0,
            consecutive_faults: 0,
            faults: 0,
            resident: BTreeMap::new(),
            lru_tick: 0,
        }
    }

    /// Installs this worker's slice of a fault plan on its device (the
    /// plan's per-device events are filtered by `self.id`). An empty plan
    /// is inert.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.dev.install_faults(plan, self.id as u32);
    }

    /// Explicit device bytes serving `csr` will pin: the reusable batch
    /// state, plus the topology when the transfer mode copies it into
    /// device memory upfront. Unified-memory topology is host-backed and
    /// pages in against the *remaining* budget, so it does not count here —
    /// the UM driver's own LRU handles its oversubscription.
    pub fn footprint_bytes(csr: &Csr, cfg: &EtaConfig) -> u64 {
        let topo = match cfg.transfer {
            // Upfront memcpy pins the whole topology in device memory.
            TransferMode::ExplicitCopy => {
                let ro = csr.row_offsets.len() as u64;
                let ci = (csr.col_idx.len() as u64).max(1);
                let w = if csr.is_weighted() { ci } else { 0 };
                (ro + ci + w) * 4
            }
            // Unified topology (demand-paged, prefetched, or adaptively
            // routed) pages in against the remaining budget under the UM
            // driver's own LRU; zero-copy topology never occupies device
            // memory at all. Either way admission pins nothing for it.
            TransferMode::Unified
            | TransferMode::UnifiedPrefetch
            | TransferMode::Adaptive
            | TransferMode::ZeroCopy => 0,
        };
        topo + MultiBfsResources::footprint_bytes(csr, cfg)
    }

    /// Number of graphs currently resident on this device.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether `name` is resident on this device.
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// Makes `name` resident (uploading and evicting as needed) and returns
    /// the time its synchronous setup completes (`now` when already warm).
    pub fn ensure_resident(
        &mut self,
        name: &str,
        csr: &Csr,
        cfg: &EtaConfig,
        now: Ns,
    ) -> Result<Ns, QueryError> {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        if let Some(rg) = self.resident.get_mut(name) {
            if rg.transfer == cfg.transfer {
                rg.last_used = tick;
                return Ok(now);
            }
            // Mode mismatch: the resident layout was built for another
            // transfer mode, so drop it and fall through to a fresh upload.
            // (Unpinned by construction — dispatch pins only for the launch
            // it is about to run, and it asks for residency first.)
            // lint: allow(L-PANIC): guarded by the contains_key + mode-mismatch check just above
            let rg = self.resident.remove(name).expect("checked above");
            rg.dg.release(&mut self.dev);
            rg.multi.release(&mut self.dev);
            self.evictions += 1;
        }
        // Evict least-recently-used unpinned graphs until the newcomer's
        // explicit footprint fits. Eviction itself is free in simulated
        // time: topology pages are clean (read-only during traversal), so
        // dropping them is an unmap, and the batch state holds no results
        // between dispatches.
        let need = Self::footprint_bytes(csr, cfg);
        while self.dev.mem.free_bytes() < need && self.evict_lru() {}
        let (dg, end) = DeviceGraph::upload(&mut self.dev, csr, cfg.transfer, now)?;
        let multi = MultiBfsResources::alloc(&mut self.dev, csr, cfg)?;
        self.uploads += 1;
        self.resident.insert(
            name.to_string(),
            ResidentGraph {
                dg,
                multi,
                transfer: cfg.transfer,
                digest: csr.digest(),
                last_used: tick,
                pins: 0,
            },
        );
        Ok(end)
    }

    /// Evicts the least-recently-used unpinned graph; `false` when nothing
    /// is evictable. Ties break on name order (BTreeMap iteration), so the
    /// choice is deterministic.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .resident
            .iter()
            .filter(|(_, rg)| rg.pins == 0)
            .min_by_key(|(_, rg)| rg.last_used)
            .map(|(name, _)| name.clone());
        match victim {
            Some(name) => {
                let rg = self.resident.remove(&name).expect("victim exists");
                rg.dg.release(&mut self.dev);
                rg.multi.release(&mut self.dev);
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    pub fn pin(&mut self, name: &str) {
        self.resident.get_mut(name).expect("resident").pins += 1;
    }

    pub fn unpin(&mut self, name: &str) {
        let rg = self.resident.get_mut(name).expect("resident");
        rg.pins = rg.pins.saturating_sub(1);
    }

    /// Runs one batch against the resident graph `name`, starting at
    /// `start` on this device's clock.
    pub fn run_batch(
        &mut self,
        name: &str,
        sources: &[u32],
        cfg: &EtaConfig,
        start: Ns,
    ) -> Result<MultiBfsResult, QueryError> {
        let rg = self.resident.get(name).expect("graph must be resident");
        multi_bfs::run_on(&mut self.dev, &rg.dg, &rg.multi, sources, cfg, start)
    }

    /// Content digest of the resident graph `name` (`None` when not
    /// resident). The scheduler stamps checkpoints with this so a resume
    /// on another device validates it resumes against the same topology.
    pub fn resident_digest(&self, name: &str) -> Option<u64> {
        self.resident.get(name).map(|rg| rg.digest)
    }

    /// Runs one batch with checkpointing: snapshots land in `sink` at the
    /// sink's configured interval, and `resume` (when given) restarts the
    /// batch from a prior snapshot instead of iteration 0. With a disabled
    /// sink and no resume this is byte-identical to [`Self::run_batch`].
    pub fn run_batch_ckpt(
        &mut self,
        name: &str,
        sources: &[u32],
        cfg: &EtaConfig,
        start: Ns,
        sink: &mut CkptSink,
        resume: Option<&Checkpoint>,
    ) -> Result<MultiBfsResult, QueryError> {
        let rg = self.resident.get(name).expect("graph must be resident");
        let ctl = match resume {
            Some(ck) => CkptCtl::resuming(sink, ck, rg.digest),
            None => CkptCtl::with_sink(sink, rg.digest),
        };
        multi_bfs::run_on_ckpt(&mut self.dev, &rg.dg, &rg.multi, sources, cfg, start, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;

    fn small(seed: u64) -> Csr {
        rmat(&RmatConfig::paper(10, 8_000, seed))
    }

    #[test]
    fn warm_graph_skips_the_upload() {
        let mut w = DeviceWorker::new(0, GpuConfig::default_preset());
        let g = small(1);
        let cfg = EtaConfig::paper();
        let t0 = w.ensure_resident("g", &g, &cfg, 0).unwrap();
        assert_eq!(w.uploads, 1);
        let r = w.run_batch("g", &[0, 3], &cfg, t0).unwrap();
        assert_eq!(r.levels[0], reference::bfs(&g, 0));
        assert_eq!(r.levels[1], reference::bfs(&g, 3));
        // Second ensure: no new upload, setup completes immediately.
        let t1 = w.ensure_resident("g", &g, &cfg, 123).unwrap();
        assert_eq!(t1, 123);
        assert_eq!(w.uploads, 1);
    }

    #[test]
    fn lru_eviction_makes_room_and_keeps_results_correct() {
        // Device sized to hold roughly one graph's batch state at a time.
        let g1 = small(1);
        let cfg = EtaConfig::paper();
        let one = DeviceWorker::footprint_bytes(&g1, &cfg);
        let mut w = DeviceWorker::new(0, GpuConfig::gtx1080ti_scaled(one + one / 2));
        let g2 = small(2);
        let g3 = small(3);
        w.ensure_resident("g1", &g1, &cfg, 0).unwrap();
        w.ensure_resident("g2", &g2, &cfg, 0).unwrap();
        assert!(w.evictions >= 1, "second graph must evict the first");
        w.ensure_resident("g3", &g3, &cfg, 0).unwrap();
        assert!(w.resident_count() <= 2);
        // The surviving graph still answers correctly after the churn.
        let r = w.run_batch("g3", &[7], &cfg, 0).unwrap();
        assert_eq!(r.levels[0], reference::bfs(&g3, 7));
        // And a re-ensure of an evicted graph re-uploads, still correct.
        w.ensure_resident("g1", &g1, &cfg, 0).unwrap();
        let r = w.run_batch("g1", &[5], &cfg, 0).unwrap();
        assert_eq!(r.levels[0], reference::bfs(&g1, 5));
    }

    #[test]
    fn zero_copy_footprint_shrinks_and_admits_more_tenants() {
        let g = small(1);
        let explicit = DeviceWorker::footprint_bytes(&g, &EtaConfig::without_um());
        let zc = DeviceWorker::footprint_bytes(&g, &EtaConfig::zero_copy());
        let adaptive = DeviceWorker::footprint_bytes(&g, &EtaConfig::adaptive());
        assert!(
            zc < explicit,
            "host-mapped topology must not count against device memory"
        );
        assert_eq!(zc, adaptive, "both modes pin only the batch state");
        // The saved topology bytes become admission headroom: a device with
        // `explicit + zc` capacity holds two zero-copy tenants at once,
        // while two explicit tenants must churn through eviction.
        let g2 = small(2);
        let cap = explicit + zc;
        let mut w = DeviceWorker::new(0, GpuConfig::gtx1080ti_scaled(cap));
        let cfg = EtaConfig::zero_copy();
        w.ensure_resident("g1", &g, &cfg, 0).unwrap();
        w.ensure_resident("g2", &g2, &cfg, 0).unwrap();
        assert_eq!(w.evictions, 0, "both tenants fit without churn");
        assert_eq!(w.resident_count(), 2);
        let r = w.run_batch("g1", &[0], &cfg, 0).unwrap();
        assert_eq!(r.levels[0], reference::bfs(&g, 0));

        let mut we = DeviceWorker::new(0, GpuConfig::gtx1080ti_scaled(cap));
        let cfg_e = EtaConfig::without_um();
        we.ensure_resident("g1", &g, &cfg_e, 0).unwrap();
        we.ensure_resident("g2", &g2, &cfg_e, 0).unwrap();
        assert!(we.evictions >= 1, "explicit tenants cannot coexist here");
    }

    #[test]
    fn checkpointed_batch_resumes_on_another_worker() {
        let g = small(1);
        let cfg = EtaConfig::paper();
        let sources = vec![0u32, 3, 9];
        let mut w0 = DeviceWorker::new(0, GpuConfig::default_preset());
        let t0 = w0.ensure_resident("g", &g, &cfg, 0).unwrap();
        let clean = w0.run_batch("g", &sources, &cfg, t0).unwrap();

        // Snapshot every 2 iterations on worker 0, then resume the last
        // snapshot on a different worker — the cross-device migration path.
        let mut sink = CkptSink::every(2);
        let mut w1 = DeviceWorker::new(1, GpuConfig::default_preset());
        let ta = w1.ensure_resident("g", &g, &cfg, 0).unwrap();
        w1.run_batch_ckpt("g", &sources, &cfg, ta, &mut sink, None)
            .unwrap();
        let ck = sink.take().expect("interval 2 must snapshot");
        assert!(ck.iteration >= 2);

        let mut w2 = DeviceWorker::new(2, GpuConfig::default_preset());
        let tb = w2.ensure_resident("g", &g, &cfg, 0).unwrap();
        let resumed = w2
            .run_batch_ckpt("g", &sources, &cfg, tb, &mut sink, Some(&ck))
            .unwrap();
        assert_eq!(resumed.levels, clean.levels, "migration preserves answers");
        assert_eq!(
            w2.resident_digest("g"),
            w1.resident_digest("g"),
            "same topology hashes identically on both workers"
        );
    }

    #[test]
    fn transfer_mode_switch_reuploads_the_graph() {
        // The qos brownout path re-routes best-effort batches to zero-copy:
        // a residency built under one mode must be dropped and rebuilt, not
        // silently reused with the wrong layout.
        let mut w = DeviceWorker::new(0, GpuConfig::default_preset());
        let g = small(1);
        let paper = EtaConfig::paper();
        let zc = EtaConfig::zero_copy();
        w.ensure_resident("g", &g, &paper, 0).unwrap();
        assert_eq!((w.uploads, w.evictions), (1, 0));
        // Same mode: warm, no churn.
        w.ensure_resident("g", &g, &paper, 10).unwrap();
        assert_eq!((w.uploads, w.evictions), (1, 0));
        // Brownout re-route: drop + re-upload under zero-copy.
        w.ensure_resident("g", &g, &zc, 20).unwrap();
        assert_eq!((w.uploads, w.evictions), (2, 1));
        let r = w.run_batch("g", &[0], &zc, 20).unwrap();
        assert_eq!(r.levels[0], reference::bfs(&g, 0));
        // Restore: pressure cleared, the normal mode re-uploads once more.
        w.ensure_resident("g", &g, &paper, 30).unwrap();
        assert_eq!((w.uploads, w.evictions), (3, 2));
        let r = w.run_batch("g", &[3], &paper, 30).unwrap();
        assert_eq!(r.levels[0], reference::bfs(&g, 3));
    }

    #[test]
    fn pinned_graphs_survive_eviction_pressure() {
        let g1 = small(1);
        let cfg = EtaConfig::paper();
        let one = DeviceWorker::footprint_bytes(&g1, &cfg);
        let mut w = DeviceWorker::new(0, GpuConfig::gtx1080ti_scaled(one + one / 2));
        w.ensure_resident("g1", &g1, &cfg, 0).unwrap();
        w.pin("g1");
        // g2 cannot evict the pinned g1, so its allocation fails typed.
        let g2 = small(2);
        let err = w.ensure_resident("g2", &g2, &cfg, 0);
        assert!(matches!(err, Err(QueryError::Mem(_))));
        assert!(w.is_resident("g1"));
        w.unpin("g1");
        // Unpinned, the same request now succeeds by evicting g1.
        w.ensure_resident("g2", &g2, &cfg, 0).unwrap();
        assert!(!w.is_resident("g1"));
    }
}
