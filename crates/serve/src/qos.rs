//! `eta-qos` — overload control for the serving layer, on simulated time.
//!
//! Past saturation a bounded queue alone collapses into indiscriminate
//! queue-full rejections and timeout churn: the scheduler keeps spending
//! device time on requests whose deadlines are already unmeetable, and the
//! fault ladder's retries amplify load exactly when the pool can least
//! afford them. Each admitted traversal is a large indivisible unit of
//! device time (one bulk-synchronous launch), which is the regime where
//! *admission-time* decisions beat queue-time decisions — arbitrate before
//! you spend.
//!
//! This module supplies the policy pieces; [`crate::sched`] threads them
//! through the event loop:
//!
//! * [`CostModel`] — per-graph per-request device-time estimates, seeded by
//!   an analytic prior over the graph's size and calibrated online from the
//!   latency decomposition of completed batches.
//! * admission control — a request whose predicted completion (queue
//!   backlog / pool width + its own estimate) cannot meet its deadline is
//!   refused at arrival with
//!   [`RejectReason::DeadlineInfeasible`](crate::request::RejectReason).
//! * priority- and tenant-aware shedding — at queue capacity the *worst*
//!   entry (lowest priority, latest deadline, highest id) is shed, not
//!   blindly the newcomer; per-tenant [`TokenBucket`]s keep one hot tenant
//!   from starving the rest under congestion.
//! * retry budgets — a global [`TokenBucket`] gates the recovery ladder's
//!   retries (and the group scheduler's regroup-resume) so fault recovery
//!   degrades to the CPU fallback instead of amplifying a saturated pool.
//! * brownout — when the queue-delay EWMA crosses a threshold, best-effort
//!   requests (no deadline) lose their batching-priority boost and are
//!   routed to zero-copy transfer (no pin pressure); both revert
//!   deterministically when the EWMA recovers.
//!
//! Everything runs on the service's simulated clock with integer
//! arithmetic, so a trace replays to byte-identical reports. The default
//! [`QosConfig`] disables every feature and is inert: the service behaves —
//! and its report serializes — exactly as if this module did not exist.

use eta_graph::Csr;
use eta_mem::Ns;
use etagraph::{EtaConfig, TransferMode};
use serde::Serialize;
use std::collections::BTreeMap;

/// Which overload-control features are active, and their thresholds. The
/// default disables everything; [`QosConfig::standard`] is the tuned
/// all-on profile the CLI's `--qos` flag and the overload drill use.
#[derive(Debug, Clone, Default)]
pub struct QosConfig {
    /// Deadline-feasibility admission control
    /// ([`RejectReason::DeadlineInfeasible`](crate::request::RejectReason)).
    pub admission: bool,
    /// Shed the worst queue entry at capacity instead of the newcomer
    /// ([`RejectReason::ShedOverload`](crate::request::RejectReason)).
    pub shed: bool,
    /// Per-tenant fair-share token buckets, enforced only under congestion
    /// ([`RejectReason::TenantThrottled`](crate::request::RejectReason)).
    pub fair_share: bool,
    /// Device-nanoseconds each tenant's bucket accrues per simulated
    /// second.
    pub tenant_rate_ns_per_s: u64,
    /// Device-nanoseconds a tenant bucket holds at most (its burst).
    pub tenant_burst_ns: u64,
    /// Fair share is work-conserving: buckets are only consulted while the
    /// queue holds at least this many entries.
    pub fair_share_min_queue: usize,
    /// Gate recovery-ladder retries through the global retry bucket.
    pub retry_budget: bool,
    /// Retry tokens accrued per simulated second.
    pub retry_rate_per_s: u64,
    /// Retry tokens the bucket holds at most.
    pub retry_burst: u64,
    /// Brownout degradation of best-effort requests under sustained
    /// overload.
    pub brownout: bool,
    /// Queue-delay EWMA at or above this enters brownout.
    pub brownout_enter_ns: Ns,
    /// Queue-delay EWMA at or below this exits brownout (hysteresis:
    /// strictly below `brownout_enter_ns`).
    pub brownout_exit_ns: Ns,
}

impl QosConfig {
    /// The tuned all-on profile: every feature enabled with thresholds
    /// sized for the simulated pool (sub-millisecond traversals, a few
    /// devices, a couple of tenants).
    pub fn standard() -> Self {
        QosConfig {
            admission: true,
            shed: true,
            fair_share: true,
            // 70% of one device per tenant: two tenants can saturate a
            // two-device pool, one tenant alone cannot.
            tenant_rate_ns_per_s: 700_000_000,
            tenant_burst_ns: 30_000_000,
            fair_share_min_queue: 8,
            retry_budget: true,
            retry_rate_per_s: 100,
            retry_burst: 4,
            brownout: true,
            brownout_enter_ns: 2_000_000,
            brownout_exit_ns: 500_000,
        }
    }

    /// Whether any feature is on. When `false` the scheduler's qos hooks
    /// are inert and the report carries no qos section.
    pub fn any_enabled(&self) -> bool {
        self.admission || self.shed || self.fair_share || self.retry_budget || self.brownout
    }
}

/// A token bucket on simulated time with exact integer refill: the
/// fractional part of `elapsed_ns * rate / 1e9` is carried between refills,
/// so no token is ever lost to rounding and identical call sequences
/// produce identical balances.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_s: u64,
    burst: u64,
    tokens: u64,
    /// Sub-token refill remainder, always `< 1e9`.
    carry: u64,
    last_ns: Ns,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate_per_s: u64, burst: u64) -> Self {
        TokenBucket {
            rate_per_s,
            burst,
            tokens: burst,
            carry: 0,
            last_ns: 0,
        }
    }

    fn refill(&mut self, now: Ns) {
        if now <= self.last_ns {
            return;
        }
        let elapsed = now - self.last_ns;
        self.last_ns = now;
        let num = elapsed as u128 * self.rate_per_s as u128 + self.carry as u128;
        // lint: allow(L-CAST-TRUNC): both quotients are < num, and tokens saturate at `burst` below
        let add = (num / 1_000_000_000).min(u64::MAX as u128) as u64;
        self.carry = (num % 1_000_000_000) as u64;
        self.tokens = self.tokens.saturating_add(add).min(self.burst);
        if self.tokens == self.burst {
            // A full bucket banks nothing: the carry would otherwise grant
            // a phantom token the instant one is spent.
            self.carry = 0;
        }
    }

    /// Takes `n` tokens if available at `now`; `false` leaves the balance
    /// untouched.
    pub fn try_take(&mut self, now: Ns, n: u64) -> bool {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Current balance at `now` (refills first).
    pub fn available(&mut self, now: Ns) -> u64 {
        self.refill(now);
        self.tokens
    }
}

/// Per-graph per-request device-time estimates. A graph starts on an
/// analytic prior over its size; every completed batch feeds one
/// `total_ns / batch_size` sample into an EWMA (α = 1/8), so the model
/// converges to the *batched* per-request cost — which is what admission
/// should charge, since the scheduler will batch.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    est: BTreeMap<String, Ns>,
}

impl CostModel {
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Analytic prior: a launch overhead plus memory-bound per-vertex and
    /// per-edge walks at GPU rates. Zero-copy pays per-edge sector reads
    /// over PCIe, so its prior doubles.
    pub fn prior(csr: &Csr, eta: &EtaConfig) -> Ns {
        let base = 30_000 + csr.n() as Ns / 2 + csr.m() as Ns / 4;
        match eta.transfer {
            TransferMode::ZeroCopy => base * 2,
            _ => base,
        }
    }

    /// Estimated device-ns one request against `graph` will consume.
    pub fn estimate(&self, graph: &str, csr: &Csr, eta: &EtaConfig) -> Ns {
        match self.est.get(graph) {
            Some(&e) => e,
            None => Self::prior(csr, eta),
        }
    }

    /// Feeds one observed per-request sample (a completed batch's
    /// `total_ns / size`) into the graph's EWMA.
    pub fn observe(&mut self, graph: &str, csr: &Csr, eta: &EtaConfig, sample: Ns) {
        let prior = Self::prior(csr, eta);
        let e = self.est.entry(graph.to_string()).or_insert(prior);
        *e = *e - *e / 8 + sample / 8;
    }
}

/// What the qos layer did over one run. Attached to
/// [`ServeReport`](crate::report::ServeReport) as `Some(..)` whenever any
/// feature was enabled.
#[derive(Debug, Clone, Default, Serialize)]
pub struct QosStats {
    /// Arrivals refused as `deadline_infeasible`.
    pub admission_rejections: u32,
    /// Entries shed at queue capacity (`shed_overload`), newcomer or not.
    pub shed_rejections: u32,
    /// Arrivals refused as `tenant_throttled`.
    pub throttle_rejections: u32,
    /// Ladder retries the budget admitted.
    pub retries_granted: u32,
    /// Ladder retries the budget refused — those requests fell straight to
    /// the CPU fallback instead of re-entering the queue.
    pub retries_denied: u32,
    /// Brownout enter transitions.
    pub brownout_entries: u32,
    /// Brownout exit transitions.
    pub brownout_exits: u32,
    /// Batches served degraded (zero-copy route) during brownout.
    pub brownout_batches: u32,
    /// Requests that rode a brownout-degraded batch.
    pub brownout_downgrades: u32,
    /// Deepest the queue ever got.
    pub max_queue_depth: u32,
}

/// A brownout transition the scheduler should log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutTransition {
    Entered,
    Exited,
}

/// Mutable qos state for one run: the cost model, the tenant and retry
/// buckets, the brownout EWMA, and the stats.
#[derive(Debug, Clone)]
pub struct QosState {
    pub cost: CostModel,
    tenants: BTreeMap<String, TokenBucket>,
    retry: TokenBucket,
    /// Whether brownout degradation is currently in force.
    pub brownout_active: bool,
    wait_ewma: Ns,
    pub stats: QosStats,
}

impl QosState {
    pub fn new(cfg: &QosConfig) -> Self {
        QosState {
            cost: CostModel::new(),
            tenants: BTreeMap::new(),
            retry: TokenBucket::new(cfg.retry_rate_per_s, cfg.retry_burst),
            brownout_active: false,
            wait_ewma: 0,
            stats: QosStats::default(),
        }
    }

    /// Charges `cost_ns` against the tenant's fair-share bucket; `false`
    /// means the tenant is over its share right now. Buckets are created
    /// full on first sight, so a tenant's initial burst is never penalized.
    pub fn tenant_try_charge(
        &mut self,
        cfg: &QosConfig,
        tenant: &str,
        now: Ns,
        cost_ns: Ns,
    ) -> bool {
        let bucket = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(cfg.tenant_rate_ns_per_s, cfg.tenant_burst_ns));
        bucket.try_take(now, cost_ns)
    }

    /// Asks the global retry budget for one retry token. Always grants when
    /// the budget feature is off; stats count grants and denials otherwise.
    pub fn retry_try_take(&mut self, cfg: &QosConfig, now: Ns) -> bool {
        if !cfg.retry_budget {
            return true;
        }
        if self.retry.try_take(now, 1) {
            self.stats.retries_granted += 1;
            true
        } else {
            self.stats.retries_denied += 1;
            false
        }
    }

    /// Feeds one queue-delay sample (the dispatched head's wait) into the
    /// brownout EWMA (α = 1/8) and reports a threshold crossing, if any.
    pub fn observe_wait(&mut self, cfg: &QosConfig, wait_ns: Ns) -> Option<BrownoutTransition> {
        self.wait_ewma = self.wait_ewma - self.wait_ewma / 8 + wait_ns / 8;
        if !self.brownout_active && self.wait_ewma >= cfg.brownout_enter_ns {
            self.brownout_active = true;
            self.stats.brownout_entries += 1;
            Some(BrownoutTransition::Entered)
        } else if self.brownout_active && self.wait_ewma <= cfg.brownout_exit_ns {
            self.brownout_active = false;
            self.stats.brownout_exits += 1;
            Some(BrownoutTransition::Exited)
        } else {
            None
        }
    }

    /// The current queue-delay EWMA (for reporting and tests).
    pub fn wait_ewma(&self) -> Ns {
        self.wait_ewma
    }

    /// Records the queue depth after a push.
    pub fn note_depth(&mut self, depth: usize) {
        // lint: allow(L-CAST-TRUNC): depth is bounded by queue_capacity, far below u32::MAX
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};

    #[test]
    fn token_bucket_refills_exactly_with_carry() {
        // 3 tokens/s: after 333_333_333 ns the bucket holds 0 (rounds
        // down); after 1 s exactly 3 accrued with no drift.
        let mut b = TokenBucket::new(3, 10);
        assert!(b.try_take(0, 10), "starts full");
        assert_eq!(b.available(333_333_333), 0, "0.999… tokens rounds down");
        assert_eq!(b.available(666_666_666), 1);
        assert_eq!(b.available(1_000_000_000), 3, "carry loses nothing");
    }

    #[test]
    fn token_bucket_caps_at_burst_and_banks_no_carry_when_full() {
        let mut b = TokenBucket::new(1_000, 5);
        assert_eq!(b.available(10_000_000_000), 5, "caps at burst");
        // The long idle period must not bank a fractional token: the next
        // nanosecond grants nothing.
        assert!(b.try_take(10_000_000_000, 5));
        assert_eq!(b.available(10_000_000_001), 0);
    }

    #[test]
    fn token_bucket_denies_without_spending() {
        let mut b = TokenBucket::new(0, 2);
        assert!(b.try_take(0, 1));
        assert!(b.try_take(0, 1));
        assert!(!b.try_take(0, 1), "zero rate never refills");
        assert!(!b.try_take(1_000_000_000, 1));
    }

    #[test]
    fn cost_model_calibrates_toward_samples() {
        let csr = rmat(&RmatConfig::paper(8, 1_000, 1));
        let eta = EtaConfig::paper();
        let mut m = CostModel::new();
        let prior = m.estimate("g", &csr, &eta);
        assert_eq!(prior, CostModel::prior(&csr, &eta));
        // Feed a sample far above the prior: the EWMA moves toward it and
        // converges within a few hundred observations.
        for _ in 0..256 {
            m.observe("g", &csr, &eta, 1_000_000);
        }
        let e = m.estimate("g", &csr, &eta);
        assert!(e > prior, "estimate moved up toward the samples");
        assert!(
            (900_000..=1_000_000).contains(&e),
            "converged near the sample, got {e}"
        );
    }

    #[test]
    fn zero_copy_prior_is_costlier() {
        let csr = rmat(&RmatConfig::paper(8, 1_000, 1));
        assert!(
            CostModel::prior(&csr, &EtaConfig::zero_copy())
                > CostModel::prior(&csr, &EtaConfig::paper())
        );
    }

    #[test]
    fn brownout_has_hysteresis() {
        let cfg = QosConfig {
            brownout: true,
            brownout_enter_ns: 1_000,
            brownout_exit_ns: 200,
            ..QosConfig::default()
        };
        let mut st = QosState::new(&cfg);
        let mut entered_at = None;
        for i in 0..64 {
            if st.observe_wait(&cfg, 8_000) == Some(BrownoutTransition::Entered) {
                entered_at = Some(i);
                break;
            }
        }
        assert!(entered_at.is_some(), "sustained delay must enter brownout");
        assert!(st.brownout_active);
        // A single quiet sample must not exit (hysteresis); a sustained
        // quiet period must.
        assert_eq!(st.observe_wait(&cfg, 0), None);
        assert!(st.brownout_active);
        let mut exited = false;
        for _ in 0..64 {
            if st.observe_wait(&cfg, 0) == Some(BrownoutTransition::Exited) {
                exited = true;
                break;
            }
        }
        assert!(exited, "sustained recovery must exit brownout");
        assert_eq!(st.stats.brownout_entries, 1);
        assert_eq!(st.stats.brownout_exits, 1);
    }

    #[test]
    fn tenant_buckets_are_independent() {
        let cfg = QosConfig {
            fair_share: true,
            tenant_rate_ns_per_s: 0,
            tenant_burst_ns: 100,
            ..QosConfig::default()
        };
        let mut st = QosState::new(&cfg);
        assert!(st.tenant_try_charge(&cfg, "a", 0, 100));
        assert!(!st.tenant_try_charge(&cfg, "a", 0, 1), "a is drained");
        assert!(st.tenant_try_charge(&cfg, "b", 0, 60), "b is untouched");
    }

    #[test]
    fn retry_budget_disabled_always_grants() {
        let cfg = QosConfig::default();
        let mut st = QosState::new(&cfg);
        for _ in 0..1_000 {
            assert!(st.retry_try_take(&cfg, 0));
        }
        assert_eq!(
            st.stats.retries_granted, 0,
            "disabled budget keeps no stats"
        );
    }

    #[test]
    fn retry_budget_denies_when_drained() {
        let cfg = QosConfig {
            retry_budget: true,
            retry_rate_per_s: 0,
            retry_burst: 2,
            ..QosConfig::default()
        };
        let mut st = QosState::new(&cfg);
        assert!(st.retry_try_take(&cfg, 0));
        assert!(st.retry_try_take(&cfg, 0));
        assert!(!st.retry_try_take(&cfg, 0));
        assert_eq!(st.stats.retries_granted, 2);
        assert_eq!(st.stats.retries_denied, 1);
    }

    #[test]
    fn standard_profile_enables_everything() {
        assert!(QosConfig::standard().any_enabled());
        assert!(!QosConfig::default().any_enabled());
        let std = QosConfig::standard();
        assert!(std.brownout_exit_ns < std.brownout_enter_ns, "hysteresis");
    }
}
