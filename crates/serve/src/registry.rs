//! Named graphs the service can answer queries about.
//!
//! The registry holds host-side CSRs; *device* residency is per-worker and
//! managed by [`crate::pool::DeviceWorker`] (a graph may be resident on
//! several devices at once, or none). A `BTreeMap` keeps iteration order —
//! and therefore every downstream decision — deterministic.

use eta_graph::Csr;
use std::collections::BTreeMap;

/// Host-side catalog of named graphs.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: BTreeMap<String, Csr>,
}

impl GraphRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a graph under `name`.
    pub fn insert(&mut self, name: &str, csr: Csr) {
        self.graphs.insert(name.to_string(), csr);
    }

    pub fn get(&self, name: &str) -> Option<&Csr> {
        self.graphs.get(name)
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.graphs.keys().map(|s| s.as_str()).collect()
    }

    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};

    #[test]
    fn insert_get_and_sorted_names() {
        let mut reg = GraphRegistry::new();
        assert!(reg.is_empty());
        reg.insert("zeta", rmat(&RmatConfig::paper(8, 1_000, 1)));
        reg.insert("alpha", rmat(&RmatConfig::paper(8, 1_000, 2)));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["alpha", "zeta"]);
        assert!(reg.get("alpha").is_some());
        assert!(reg.get("missing").is_none());
    }
}
