//! Named graphs the service can answer queries about.
//!
//! The registry holds host-side CSRs; *device* residency is per-worker and
//! managed by [`crate::pool::DeviceWorker`] (a graph may be resident on
//! several devices at once, or none). A `BTreeMap` keeps iteration order —
//! and therefore every downstream decision — deterministic.
//!
//! Beyond whole-graph lookup, the registry also admits **partitioned
//! residency** for device-group serving: [`GraphRegistry::partition`]
//! caches the `devices`-way [`eta_shard::GraphPartition`] of a named graph,
//! and [`GraphRegistry::group_footprint_bytes`] sizes the *largest member's*
//! pinned bytes — counting each shard's halo-replica label/tag/queue rows,
//! not just its owned range, because that is what the engine allocates.

use eta_graph::Csr;
use eta_shard::GraphPartition;
use etagraph::EtaConfig;
use std::collections::BTreeMap;

/// Host-side catalog of named graphs.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: BTreeMap<String, Csr>,
    /// Cached partitions, keyed by (graph name, group size). Invalidated
    /// when the graph is replaced.
    partitions: BTreeMap<(String, u32), GraphPartition>,
}

impl GraphRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a graph under `name`.
    pub fn insert(&mut self, name: &str, csr: Csr) {
        self.partitions.retain(|(n, _), _| n != name);
        self.graphs.insert(name.to_string(), csr);
    }

    /// The `devices`-way vertex-range partition of `name`, computed on
    /// first use and cached (partitioning walks every edge). `None` when
    /// the graph is not registered.
    pub fn partition(&mut self, name: &str, devices: u32) -> Option<&GraphPartition> {
        let csr = self.graphs.get(name)?;
        let key = (name.to_string(), devices);
        if !self.partitions.contains_key(&key) {
            let part = GraphPartition::vertex_range(csr, devices);
            self.partitions.insert(key.clone(), part);
        }
        self.partitions.get(&key)
    }

    /// Explicit device bytes the *largest* member of a `devices`-way group
    /// pins while serving `name`: the max over shards of the shard's full
    /// footprint. Each shard allocates labels, tags and queues over its
    /// **local** vertex space — owned range plus replicated halo rows — so
    /// admission must size that, not `owned/devices`: a cut with a large
    /// halo can make every member strictly bigger than an even split of the
    /// whole graph, and an owned-range check would over-admit exactly those
    /// partitions (the group then OOMs mid-flight instead of rejecting
    /// upfront). `None` when the graph is not registered.
    pub fn group_footprint_bytes(
        &mut self,
        name: &str,
        devices: u32,
        cfg: &EtaConfig,
    ) -> Option<u64> {
        let explicit = cfg.transfer.topology_is_explicit();
        let k = cfg.k;
        self.partition(name, devices).map(|p| {
            p.shards
                .iter()
                .map(|s| s.footprint_bytes(k, explicit))
                .max()
                .unwrap_or(0)
        })
    }

    pub fn get(&self, name: &str) -> Option<&Csr> {
        self.graphs.get(name)
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.graphs.keys().map(|s| s.as_str()).collect()
    }

    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};

    #[test]
    fn partitions_are_cached_and_invalidated_on_replace() {
        let mut reg = GraphRegistry::new();
        reg.insert("g", rmat(&RmatConfig::paper(9, 3_000, 1)));
        let cuts = reg.partition("g", 2).unwrap().cuts.clone();
        assert_eq!(reg.partition("g", 2).unwrap().cuts, cuts, "cache hit");
        assert!(reg.partition("missing", 2).is_none());
        // Replacing the graph drops its cached partitions.
        reg.insert("g", rmat(&RmatConfig::paper(8, 1_500, 2)));
        let fresh = reg.partition("g", 2).unwrap();
        assert_eq!(fresh.n as usize, reg.get("g").unwrap().n());
    }

    #[test]
    fn group_footprint_counts_halo_replicas() {
        use etagraph::EtaConfig;
        let mut reg = GraphRegistry::new();
        reg.insert("g", rmat(&RmatConfig::paper(10, 12_000, 3)));
        let cfg = EtaConfig::paper();
        let fp = reg.group_footprint_bytes("g", 2, &cfg).unwrap();
        let part = reg.partition("g", 2).unwrap();
        assert!(part.halo_total() > 0, "an rmat cut has cross edges");
        // The admitted size is the max *local* footprint; any shard with a
        // non-empty halo is strictly bigger than its owned range alone.
        let explicit = cfg.transfer.topology_is_explicit();
        let max_local = part
            .shards
            .iter()
            .map(|s| s.footprint_bytes(cfg.k, explicit))
            .max()
            .unwrap();
        assert_eq!(fp, max_local);
        assert!(reg.group_footprint_bytes("missing", 2, &cfg).is_none());
    }

    #[test]
    fn insert_get_and_sorted_names() {
        let mut reg = GraphRegistry::new();
        assert!(reg.is_empty());
        reg.insert("zeta", rmat(&RmatConfig::paper(8, 1_000, 1)));
        reg.insert("alpha", rmat(&RmatConfig::paper(8, 1_000, 2)));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["alpha", "zeta"]);
        assert!(reg.get("alpha").is_some());
        assert!(reg.get("missing").is_none());
    }
}
