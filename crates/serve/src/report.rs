//! What a served workload produced: per-request latency decomposition,
//! per-batch launch records, rejections, and per-device utilization.
//!
//! The report stores raw nanosecond samples only. Percentile math
//! (p50/p95/p99) deliberately lives in `eta-bench`'s `stats` module so one
//! documented nearest-rank implementation serves both the paper tables and
//! the serving artifacts — this crate stays a pure producer.

use crate::qos::QosStats;
use crate::request::{Priority, Rejection};
use eta_mem::Ns;
use serde::Serialize;

/// One completed request, with its latency broken into the three phases the
/// scheduler controls: waiting in queue, moving data, and computing.
#[derive(Debug, Clone, Serialize)]
pub struct RequestRecord {
    pub id: u32,
    pub graph: String,
    pub class: Priority,
    pub source: u32,
    pub arrival_ns: Ns,
    /// Arrival → the dispatch that picked this request up.
    pub queue_wait_ns: Ns,
    /// Non-kernel service time: topology upload (cold graphs), label
    /// initialization copies, per-iteration count readbacks, UM stalls.
    pub transfer_ns: Ns,
    /// Kernel execution time of the batch this request rode in.
    pub compute_ns: Ns,
    /// Arrival → completion (the sum of the three phases).
    pub latency_ns: Ns,
    /// How many requests shared the batch launch (1 = unbatched).
    pub batch_size: u32,
    /// Device that served the batch.
    pub device: u32,
    /// Vertices this source reached (a cheap correctness fingerprint).
    pub reached: u32,
    /// FNV-1a digest of this request's full level array — the strong
    /// correctness fingerprint the chaos harness compares against the CPU
    /// reference, catching wrong *distances* that `reached` alone would miss.
    pub levels_digest: u64,
    /// Whether completion beat the request's deadline; `None` = no deadline.
    pub deadline_met: Option<bool>,
    /// `true` when the answer came from the CPU reference fallback after the
    /// device-side recovery ladder was exhausted. The answer is still
    /// correct — "degraded" refers to the service path, not the result.
    pub degraded: bool,
    /// Device-fault retries this request went through before completing.
    pub retries: u32,
}

/// One batched launch: which device, which graph, how many sources rode
/// along, and when it ran.
#[derive(Debug, Clone, Serialize)]
pub struct BatchRecord {
    pub device: u32,
    pub graph: String,
    pub size: u32,
    /// Dispatch decision time.
    pub dispatched_ns: Ns,
    /// Kernel work start (after any cold upload).
    pub started_ns: Ns,
    pub completed_ns: Ns,
}

/// Per-device accounting over the whole run.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceStats {
    pub device: u32,
    pub busy_ns: Ns,
    /// busy / makespan, in [0, 1].
    pub utilization: f64,
    pub uploads: u32,
    pub evictions: u32,
}

/// One injected device fault the scheduler observed (a batch failed).
#[derive(Debug, Clone, Serialize)]
pub struct FaultEvent {
    pub device: u32,
    /// Stable fault name (`ecc_double_bit`, `kernel_hang`,
    /// `um_migration_fail`).
    pub kind: String,
    /// When the device reported the fault, on the service clock.
    pub at_ns: Ns,
}

/// One quarantine window: the scheduler kept the device out of dispatch
/// for `[from_ns, until_ns)` after repeated faults.
#[derive(Debug, Clone, Serialize)]
pub struct QuarantineRecord {
    pub device: u32,
    pub from_ns: Ns,
    pub until_ns: Ns,
}

/// Accounting for one device-group composition used by sharded serving:
/// which members, how much work they did together, and how much halo
/// traffic the queries moved over the peer fabric.
#[derive(Debug, Clone, Serialize)]
pub struct GroupStats {
    /// Member device ids, ascending. Groups are keyed by composition, so a
    /// regrouped resume after a quarantine shows up as a separate entry.
    pub devices: Vec<u32>,
    /// Sharded queries this composition completed.
    pub queries: u32,
    /// Wall time the group was held (members are acquired and released
    /// together, so this is also each member's busy time in the group).
    pub busy_ns: Ns,
    /// busy / makespan, in [0, 1].
    pub utilization: f64,
    /// Peer-fabric bytes the group's queries exchanged.
    pub exchanged_bytes: u64,
    /// BSP supersteps across the group's queries.
    pub supersteps: u64,
    /// exchanged_bytes / supersteps — mean halo traffic per iteration.
    pub bytes_per_superstep: u64,
}

/// The full outcome of serving one trace. Deterministic: identical inputs
/// serialize byte-identically.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    pub completed: u32,
    pub rejected: u32,
    /// Completed requests answered by the CPU fallback (`degraded: true`).
    pub degraded: u32,
    /// completed / (completed + rejected); `1.0` for an empty trace. The
    /// recovery ladder keeps device faults out of this number — a faulted
    /// request counts as completed once a retry or the fallback answers it.
    pub availability: f64,
    /// First arrival → last completion on the service clock.
    pub makespan_ns: Ns,
    /// Completed requests per simulated second.
    pub throughput_qps: f64,
    pub records: Vec<RequestRecord>,
    pub rejections: Vec<Rejection>,
    pub batches: Vec<BatchRecord>,
    pub devices: Vec<DeviceStats>,
    /// Every device fault the scheduler observed, in observation order.
    pub fault_events: Vec<FaultEvent>,
    /// Quarantine windows imposed on repeatedly-faulting devices.
    pub quarantines: Vec<QuarantineRecord>,
    /// Snapshots taken across all batches (0 when checkpointing is off).
    pub checkpoints: u32,
    /// Faulted batches restarted from a snapshot instead of from scratch.
    pub resumes: u32,
    /// Resumes that landed on a different device than the one that faulted
    /// (a subset of `resumes`).
    pub migrations: u32,
    /// Sum over all resumes of the iteration each snapshot restored — the
    /// traversal work the ladder did *not* have to redo.
    pub work_saved_iterations: u64,
    /// Device-group accounting, one entry per group composition used.
    /// Empty (and absent from the serialization) for single-device
    /// services, so pre-group reports stay byte-identical.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub groups: Vec<GroupStats>,
    /// Overload-control accounting; `None` whenever every
    /// [`QosConfig`](crate::qos::QosConfig) feature is off.
    pub qos: Option<QosStats>,
}

impl ServeReport {
    /// Latency samples of completed requests, optionally restricted to one
    /// class. Raw data for `eta-bench`'s percentile helpers.
    pub fn latencies_ns(&self, class: Option<Priority>) -> Vec<Ns> {
        self.records
            .iter()
            .filter(|r| class.is_none_or(|c| r.class == c))
            .map(|r| r.latency_ns)
            .collect()
    }

    /// Mean number of requests per launch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        let total: u64 = self.batches.iter().map(|b| b.size as u64).sum();
        total as f64 / self.batches.len() as f64
    }

    /// Goodput: completions that met their deadline, per simulated second
    /// of makespan. Best-effort completions (no deadline) do not count —
    /// goodput measures *useful* SLO-bound work, which is what collapses
    /// under overload while raw throughput stays flat.
    pub fn goodput_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        let met = self
            .records
            .iter()
            .filter(|r| r.deadline_met == Some(true))
            .count();
        met as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Completed requests that had a deadline and met it, over all that had
    /// one.
    pub fn slo_attainment(&self) -> Option<f64> {
        let with: Vec<bool> = self.records.iter().filter_map(|r| r.deadline_met).collect();
        if with.is_empty() {
            None
        } else {
            Some(with.iter().filter(|&&m| m).count() as f64 / with.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(class: Priority, latency: Ns, met: Option<bool>) -> RequestRecord {
        RequestRecord {
            id: 0,
            graph: "g".into(),
            class,
            source: 0,
            arrival_ns: 0,
            queue_wait_ns: 1,
            transfer_ns: 2,
            compute_ns: 3,
            latency_ns: latency,
            batch_size: 1,
            device: 0,
            reached: 1,
            levels_digest: 0,
            deadline_met: met,
            degraded: false,
            retries: 0,
        }
    }

    #[test]
    fn summaries_filter_by_class_and_count_slos() {
        let report = ServeReport {
            completed: 3,
            rejected: 0,
            degraded: 0,
            availability: 1.0,
            makespan_ns: 100,
            throughput_qps: 0.0,
            records: vec![
                record(Priority::Interactive, 10, Some(true)),
                record(Priority::Batch, 20, Some(false)),
                record(Priority::Interactive, 30, None),
            ],
            rejections: vec![],
            batches: vec![
                BatchRecord {
                    device: 0,
                    graph: "g".into(),
                    size: 3,
                    dispatched_ns: 0,
                    started_ns: 0,
                    completed_ns: 50,
                },
                BatchRecord {
                    device: 0,
                    graph: "g".into(),
                    size: 1,
                    dispatched_ns: 50,
                    started_ns: 50,
                    completed_ns: 100,
                },
            ],
            devices: vec![],
            fault_events: vec![],
            quarantines: vec![],
            checkpoints: 0,
            resumes: 0,
            migrations: 0,
            work_saved_iterations: 0,
            groups: vec![],
            qos: None,
        };
        assert_eq!(report.latencies_ns(None), vec![10, 20, 30]);
        assert_eq!(report.goodput_qps(), 1e7, "1 met deadline over 100 ns");
        assert_eq!(
            report.latencies_ns(Some(Priority::Interactive)),
            vec![10, 30]
        );
        assert_eq!(report.mean_batch_size(), 2.0);
        assert_eq!(report.slo_attainment(), Some(0.5));
    }
}
