//! The service's request vocabulary: what a tenant asks for, and the typed
//! reasons the service may refuse.

use eta_mem::Ns;
use serde::Serialize;

/// Scheduling class. Interactive requests are ordered ahead of batch
/// requests under [`crate::sched::Policy::PriorityDeadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Priority {
    Interactive,
    Batch,
}

impl Priority {
    /// Queue ordering rank (lower runs first).
    pub fn rank(self) -> u32 {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// One BFS traversal request against a named graph.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: u32,
    /// Registry name of the graph to traverse.
    pub graph: String,
    pub class: Priority,
    pub source: u32,
    /// Absolute arrival time on the service clock.
    pub arrival_ns: Ns,
    /// Absolute completion deadline (the request's SLO); `None` = best
    /// effort. Deadlines order dispatch; with qos admission control on they
    /// also gate admission ([`RejectReason::DeadlineInfeasible`]).
    pub deadline_ns: Option<Ns>,
    /// Maximum queue wait; a request whose wait has *reached* this at
    /// dispatch time is dropped with [`RejectReason::TimedOut`]. The bound
    /// is inclusive, so `Some(0)` is rejected at its first dispatch even
    /// when that dispatch happens at the arrival tick itself.
    pub timeout_ns: Option<Ns>,
}

/// Why the service refused a request. Every reject is a value, never a
/// panic — an admission layer facing untrusted streams must degrade
/// per-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RejectReason {
    /// Backpressure: the bounded queue is at capacity.
    QueueFull,
    /// The named graph is not in the registry.
    UnknownGraph,
    /// The source vertex id is not a vertex of the graph.
    SourceOutOfRange,
    /// The request waited longer than its timeout.
    TimedOut,
    /// The graph's device footprint cannot fit the device, even alone.
    AdmissionDenied,
    /// Qos admission control: the predicted completion time (queue backlog
    /// plus this request's own cost estimate) cannot meet the deadline, so
    /// serving it would spend device time on a guaranteed SLO miss.
    DeadlineInfeasible,
    /// Qos shedding: dropped at queue capacity as the worst entry by
    /// (lowest priority, latest deadline, highest id) — possibly displaced
    /// from the queue by a more urgent newcomer.
    ShedOverload,
    /// Qos fair share: the tenant is over its share while the service is
    /// congested.
    TenantThrottled,
}

impl RejectReason {
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::UnknownGraph => "unknown_graph",
            RejectReason::SourceOutOfRange => "source_out_of_range",
            RejectReason::TimedOut => "timed_out",
            RejectReason::AdmissionDenied => "admission_denied",
            RejectReason::DeadlineInfeasible => "deadline_infeasible",
            RejectReason::ShedOverload => "shed_overload",
            RejectReason::TenantThrottled => "tenant_throttled",
        }
    }
}

/// A refused request: which one, why, and when.
#[derive(Debug, Clone, Serialize)]
pub struct Rejection {
    pub id: u32,
    pub reason: RejectReason,
    pub at_ns: Ns,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ranks_interactive_first() {
        assert!(Priority::Interactive.rank() < Priority::Batch.rank());
        assert_eq!(Priority::Interactive.name(), "interactive");
    }

    #[test]
    fn reject_reasons_have_stable_names() {
        for (reason, name) in [
            (RejectReason::QueueFull, "queue_full"),
            (RejectReason::UnknownGraph, "unknown_graph"),
            (RejectReason::SourceOutOfRange, "source_out_of_range"),
            (RejectReason::TimedOut, "timed_out"),
            (RejectReason::AdmissionDenied, "admission_denied"),
            (RejectReason::DeadlineInfeasible, "deadline_infeasible"),
            (RejectReason::ShedOverload, "shed_overload"),
            (RejectReason::TenantThrottled, "tenant_throttled"),
        ] {
            assert_eq!(reason.name(), name);
        }
    }
}
