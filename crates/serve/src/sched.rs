//! The scheduler: a bounded admission queue in front of the device pool,
//! with priority/deadline ordering and same-graph source batching.
//!
//! The service is a discrete-event simulation driven by one scalar clock.
//! Two kinds of events exist — a request arrives, a device frees up — and
//! between events the scheduler greedily dispatches: it picks the
//! highest-ordered queued request, coalesces up to `max_batch` queued
//! requests for the *same graph* into one [`etagraph::multi_bfs`] launch
//! (one topology read serves all of them), and places the batch on the
//! lowest-numbered idle device. Ties everywhere break on request id or
//! device id, so a trace replays to byte-identical reports.

use crate::pool::DeviceWorker;
use crate::registry::GraphRegistry;
use crate::report::{
    BatchRecord, DeviceStats, FaultEvent, QuarantineRecord, RequestRecord, ServeReport,
};
use crate::request::{RejectReason, Rejection, Request};
use eta_fault::FaultPlan;
use eta_graph::{reference, Csr};
use eta_mem::Ns;
use eta_prof::{Profile, Profiler, Track};
use eta_sim::GpuConfig;
use etagraph::multi_bfs::MAX_BATCH;
use etagraph::{EtaConfig, QueryError};
use serde::Serialize;

/// Dispatch-order policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Strict arrival order, ties on id.
    Fifo,
    /// Interactive before batch, then earliest deadline, then arrival.
    PriorityDeadline,
}

impl Policy {
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::PriorityDeadline => "priority_deadline",
        }
    }
}

/// Service shape: how many devices, how they are configured, and how the
/// queue behaves.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Configuration each device is built with.
    pub gpu: GpuConfig,
    /// Engine configuration (K, SMP, transfer mode) used for every batch.
    pub eta: EtaConfig,
    /// Bounded queue size; arrivals beyond it are rejected (backpressure).
    pub queue_capacity: usize,
    /// Max same-graph requests coalesced per launch (1 = no batching,
    /// up to [`MAX_BATCH`]).
    pub max_batch: usize,
    pub policy: Policy,
    /// Device-fault injection plan, installed per device at construction.
    /// The default (empty) plan is inert: the service behaves — and its
    /// report serializes — exactly as if the fault machinery did not exist.
    pub faults: FaultPlan,
    /// Device-fault retries per request before the CPU fallback answers it.
    pub max_retries: u32,
    /// First retry delay; doubles per retry (`base << retries`, simulated
    /// time).
    pub backoff_base_ns: Ns,
    /// Consecutive faults (no intervening success) that quarantine a device.
    pub quarantine_after: u32,
    /// How long a quarantined device sits out of dispatch before the
    /// scheduler re-probes it with ordinary traffic.
    pub quarantine_ns: Ns,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 1,
            gpu: GpuConfig::default_preset(),
            eta: EtaConfig::paper(),
            queue_capacity: 256,
            max_batch: MAX_BATCH,
            policy: Policy::PriorityDeadline,
            faults: FaultPlan::default(),
            max_retries: 2,
            backoff_base_ns: 50_000,
            quarantine_after: 3,
            quarantine_ns: 2_000_000,
        }
    }
}

/// A queued request plus its scheduler-side retry state. The public
/// [`Request`] stays a pure tenant-facing value; retry bookkeeping never
/// leaks into it.
#[derive(Debug, Clone)]
struct Queued {
    req: Request,
    /// Device-fault retries so far.
    retries: u32,
    /// Backoff gate: not dispatchable before this time.
    not_before: Ns,
}

/// The running service: registry + device pool + scheduler state.
pub struct Service<'r> {
    registry: &'r GraphRegistry,
    cfg: ServeConfig,
    workers: Vec<DeviceWorker>,
    /// Scheduler-side `eta-prof` events (queue/batch/admission); follows
    /// `cfg.gpu.profiling` like the per-device profilers do.
    prof: Profiler,
}

impl<'r> Service<'r> {
    pub fn new(registry: &'r GraphRegistry, cfg: ServeConfig) -> Self {
        assert!(cfg.devices >= 1, "need at least one device");
        assert!(
            (1..=MAX_BATCH).contains(&cfg.max_batch),
            "max_batch must be 1..={MAX_BATCH}"
        );
        let workers = (0..cfg.devices)
            .map(|id| {
                let mut w = DeviceWorker::new(id, cfg.gpu);
                w.install_faults(&cfg.faults);
                w
            })
            .collect();
        let prof = Profiler::new(cfg.gpu.profiling);
        Service {
            registry,
            cfg,
            workers,
            prof,
        }
    }

    /// The device pool, for post-run inspection (e.g. sanitizer reports).
    pub fn workers(&self) -> &[DeviceWorker] {
        &self.workers
    }

    /// The multi-process `eta-prof` profile: one "scheduler" process for
    /// queue/batch/admission events, one "deviceN" process per worker.
    /// Empty unless the service's [`GpuConfig`] enables profiling.
    pub fn profile(&self) -> Profile {
        let mut p = Profile::new();
        p.push("scheduler", self.prof.events().to_vec());
        for w in &self.workers {
            p.push(&format!("device{}", w.id), w.dev.mem.prof.events().to_vec());
        }
        p
    }

    /// Serves `trace` (must be sorted by arrival time) to completion and
    /// reports what happened. Deterministic: same registry, config, and
    /// trace produce an identical report.
    pub fn run(&mut self, trace: &[Request]) -> ServeReport {
        debug_assert!(
            trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "trace must be sorted by arrival time"
        );
        let mut queue: Vec<Queued> = Vec::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut rejections: Vec<Rejection> = Vec::new();
        let mut batches: Vec<BatchRecord> = Vec::new();
        let mut fault_events: Vec<FaultEvent> = Vec::new();
        let mut quarantines: Vec<QuarantineRecord> = Vec::new();
        let mut next = 0usize;
        let mut now: Ns = 0;
        loop {
            while next < trace.len() && trace[next].arrival_ns <= now {
                self.admit(&trace[next], now, &mut queue, &mut rejections);
                next += 1;
            }
            let dispatchable = queue.iter().any(|q| q.not_before <= now)
                && self
                    .workers
                    .iter()
                    .any(|w| w.free_at <= now && w.quarantined_until <= now);
            if dispatchable {
                self.dispatch(
                    now,
                    &mut queue,
                    &mut records,
                    &mut rejections,
                    &mut batches,
                    &mut fault_events,
                    &mut quarantines,
                );
                continue;
            }
            // Nothing dispatchable: advance to the next event.
            let t_arrival = trace.get(next).map(|r| r.arrival_ns);
            let t_worker = if queue.is_empty() {
                None // an idle device with an empty queue is not an event
            } else {
                self.workers
                    .iter()
                    .flat_map(|w| [w.free_at, w.quarantined_until])
                    .filter(|&t| t > now)
                    .min()
            };
            // Backoff gates are events too: a retried request wakes the
            // loop when its `not_before` passes, even with devices idle.
            let t_backoff = queue
                .iter()
                .map(|q| q.not_before)
                .filter(|&t| t > now)
                .min();
            match [t_arrival, t_worker, t_backoff].into_iter().flatten().min() {
                Some(t) => now = t,
                None => break,
            }
        }
        self.finish(records, rejections, batches, fault_events, quarantines)
    }

    /// Admission control at arrival time. Every refusal is a typed
    /// [`Rejection`]; admitted requests enter the bounded queue.
    fn admit(
        &mut self,
        req: &Request,
        now: Ns,
        queue: &mut Vec<Queued>,
        rejections: &mut Vec<Rejection>,
    ) {
        let prof = &mut self.prof;
        let mut reject = |reason: RejectReason| {
            if prof.is_enabled() {
                prof.instant(
                    Track::Sched,
                    "reject",
                    now,
                    vec![("id", req.id.into()), ("reason", reason.name().into())],
                );
            }
            rejections.push(Rejection {
                id: req.id,
                reason,
                at_ns: now,
            })
        };
        let Some(csr) = self.registry.get(&req.graph) else {
            return reject(RejectReason::UnknownGraph);
        };
        if req.source as usize >= csr.n() {
            return reject(RejectReason::SourceOutOfRange);
        }
        // A graph whose footprint exceeds the device even when it is the
        // sole tenant can never be served; refuse it upfront rather than
        // letting it evict everyone else and still fail.
        let capacity = self.workers[0].dev.mem.capacity_bytes();
        if DeviceWorker::footprint_bytes(csr, &self.cfg.eta) > capacity {
            return reject(RejectReason::AdmissionDenied);
        }
        if queue.len() >= self.cfg.queue_capacity {
            return reject(RejectReason::QueueFull);
        }
        queue.push(Queued {
            req: req.clone(),
            retries: 0,
            not_before: now,
        });
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Sched,
                "enqueue",
                now,
                vec![
                    ("id", req.id.into()),
                    ("graph", req.graph.as_str().into()),
                    ("class", req.class.name().into()),
                    ("depth", queue.len().into()),
                ],
            );
        }
    }

    /// One dispatch decision at time `now`: drop expired requests, order
    /// the queue by policy, coalesce the head's graph-mates into a batch,
    /// and run it on the lowest-numbered idle (and not quarantined) device.
    ///
    /// A batch that fails with [`QueryError::DeviceFault`] walks the
    /// recovery ladder: each rider is re-queued with exponential backoff
    /// until `max_retries`, after which the CPU reference answers it with
    /// `degraded: true`. The faulting device accrues consecutive-fault
    /// strikes and is quarantined at `quarantine_after`.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        now: Ns,
        queue: &mut Vec<Queued>,
        records: &mut Vec<RequestRecord>,
        rejections: &mut Vec<Rejection>,
        batches: &mut Vec<BatchRecord>,
        fault_events: &mut Vec<FaultEvent>,
        quarantines: &mut Vec<QuarantineRecord>,
    ) {
        let prof = &mut self.prof;
        // Timeout semantics are inclusive at the boundary tick: a request
        // whose wait has *reached* its limit is already too old to serve
        // (so `timeout_ns: Some(0)` never dispatches, even at its own
        // arrival tick).
        queue.retain(|q| match q.req.timeout_ns {
            Some(limit) if now - q.req.arrival_ns >= limit => {
                if prof.is_enabled() {
                    prof.instant(
                        Track::Sched,
                        "reject",
                        now,
                        vec![
                            ("id", q.req.id.into()),
                            ("reason", RejectReason::TimedOut.name().into()),
                        ],
                    );
                }
                rejections.push(Rejection {
                    id: q.req.id,
                    reason: RejectReason::TimedOut,
                    at_ns: now,
                });
                false
            }
            _ => true,
        });
        match self.cfg.policy {
            Policy::Fifo => queue.sort_by_key(|q| (q.req.arrival_ns, q.req.id)),
            Policy::PriorityDeadline => queue.sort_by_key(|q| {
                (
                    q.req.class.rank(),
                    q.req.deadline_ns.unwrap_or(Ns::MAX),
                    q.req.arrival_ns,
                    q.req.id,
                )
            }),
        }
        // The first dispatchable entry (backoff gate passed) defines the
        // batch's graph; later dispatchable entries for the same graph ride
        // along, up to `max_batch`. Entries still backing off stay queued.
        let Some(head) = queue.iter().find(|q| q.not_before <= now) else {
            return; // every dispatchable entry timed out above
        };
        let graph = head.req.graph.clone();
        let mut batch: Vec<Queued> = Vec::new();
        queue.retain(|q| {
            if batch.len() < self.cfg.max_batch && q.req.graph == graph && q.not_before <= now {
                batch.push(q.clone());
                false
            } else {
                true
            }
        });
        let worker = self
            .workers
            .iter_mut()
            .find(|w| w.free_at <= now && w.quarantined_until <= now)
            .expect("dispatch requires an idle worker");
        let csr = self.registry.get(&graph).expect("validated at admission");
        let cfg = &self.cfg.eta;
        let ready = match worker.ensure_resident(&graph, csr, cfg, now) {
            Ok(t) => t,
            Err(_) => {
                // The pool could not make room (e.g. memory fragmentation
                // across co-resident tenants). Refuse this batch; the rest
                // of the queue keeps flowing.
                for q in &batch {
                    if self.prof.is_enabled() {
                        self.prof.instant(
                            Track::Sched,
                            "reject",
                            now,
                            vec![
                                ("id", q.req.id.into()),
                                ("reason", RejectReason::AdmissionDenied.name().into()),
                            ],
                        );
                    }
                    rejections.push(Rejection {
                        id: q.req.id,
                        reason: RejectReason::AdmissionDenied,
                        at_ns: now,
                    });
                }
                return;
            }
        };
        worker.pin(&graph);
        let sources: Vec<u32> = batch.iter().map(|q| q.req.source).collect();
        let result = worker.run_batch(&graph, &sources, cfg, ready);
        worker.unpin(&graph);
        let result = match result {
            Ok(r) => r,
            Err(QueryError::DeviceFault(fault)) => {
                // The device clock stopped where the fault surfaced; the
                // worker was busy (and the requests were in flight) until
                // then.
                let fail_at = fault.at_ns.max(now);
                worker.busy_ns += fail_at - now;
                worker.free_at = fail_at;
                worker.consecutive_faults += 1;
                worker.faults += 1;
                let device = worker.id as u32;
                fault_events.push(FaultEvent {
                    device,
                    kind: fault.kind.name().to_string(),
                    at_ns: fault.at_ns,
                });
                if self.prof.is_enabled() {
                    self.prof.instant(
                        Track::Fault,
                        "device_fault",
                        fail_at,
                        vec![
                            ("device", device.into()),
                            ("kind", fault.kind.name().into()),
                        ],
                    );
                }
                if worker.consecutive_faults >= self.cfg.quarantine_after {
                    worker.quarantined_until = fail_at + self.cfg.quarantine_ns;
                    worker.consecutive_faults = 0;
                    quarantines.push(QuarantineRecord {
                        device,
                        from_ns: fail_at,
                        until_ns: worker.quarantined_until,
                    });
                    if self.prof.is_enabled() {
                        self.prof.instant(
                            Track::Fault,
                            "quarantine",
                            fail_at,
                            vec![
                                ("device", device.into()),
                                ("until_ns", worker.quarantined_until.into()),
                            ],
                        );
                    }
                }
                for q in batch {
                    if q.retries >= self.cfg.max_retries {
                        // Rung 3: the CPU reference answers. Slow but sure —
                        // the response is correct, only the path is degraded.
                        let levels = reference::bfs(csr, q.req.source);
                        let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
                        let cpu_ns = Self::cpu_fallback_ns(csr);
                        let completion = fail_at + cpu_ns;
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Fault,
                                "cpu_fallback",
                                fail_at,
                                vec![("id", q.req.id.into()), ("cpu_ns", cpu_ns.into())],
                            );
                        }
                        records.push(RequestRecord {
                            id: q.req.id,
                            graph: q.req.graph.clone(),
                            class: q.req.class,
                            source: q.req.source,
                            arrival_ns: q.req.arrival_ns,
                            queue_wait_ns: now - q.req.arrival_ns,
                            transfer_ns: 0,
                            compute_ns: cpu_ns,
                            latency_ns: completion - q.req.arrival_ns,
                            batch_size: 1,
                            device,
                            reached,
                            deadline_met: q.req.deadline_ns.map(|d| completion <= d),
                            degraded: true,
                            retries: q.retries,
                        });
                    } else {
                        // Rung 1: re-queue with exponential backoff. The
                        // gate is strictly in the future, so the event loop
                        // always advances.
                        let delay = self.cfg.backoff_base_ns << q.retries;
                        let not_before = (fail_at + delay).max(now + 1);
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Fault,
                                "retry",
                                fail_at,
                                vec![("id", q.req.id.into()), ("not_before", not_before.into())],
                            );
                        }
                        queue.push(Queued {
                            retries: q.retries + 1,
                            not_before,
                            req: q.req,
                        });
                    }
                }
                return;
            }
            Err(e) => unreachable!("sources validated at admission: {e}"),
        };
        worker.consecutive_faults = 0;
        let completion = ready + result.total_ns;
        worker.busy_ns += completion - now;
        worker.free_at = completion;
        batches.push(BatchRecord {
            device: worker.id as u32,
            graph: graph.clone(),
            size: batch.len() as u32,
            dispatched_ns: now,
            started_ns: ready,
            completed_ns: completion,
        });
        for (k, q) in batch.iter().enumerate() {
            let r = &q.req;
            let reached = result.levels[k].iter().filter(|&&l| l != u32::MAX).count() as u32;
            records.push(RequestRecord {
                id: r.id,
                graph: r.graph.clone(),
                class: r.class,
                source: r.source,
                arrival_ns: r.arrival_ns,
                queue_wait_ns: now - r.arrival_ns,
                transfer_ns: (completion - now) - result.kernel_ns,
                compute_ns: result.kernel_ns,
                latency_ns: completion - r.arrival_ns,
                batch_size: batch.len() as u32,
                device: worker.id as u32,
                reached,
                deadline_met: r.deadline_ns.map(|d| completion <= d),
                degraded: false,
                retries: q.retries,
            });
        }
        if self.prof.is_enabled() {
            let device = batches.last().expect("just pushed").device;
            self.prof.record(
                Track::Sched,
                "batch",
                now,
                completion,
                vec![
                    ("graph", graph.as_str().into()),
                    ("device", device.into()),
                    ("size", batch.len().into()),
                ],
            );
        }
    }

    /// Simulated cost of a host-side [`reference::bfs`] answer: a fixed
    /// software overhead plus memory-bound per-vertex and per-edge walks,
    /// far off the GPU's rates. Deterministic by construction.
    fn cpu_fallback_ns(csr: &Csr) -> Ns {
        10_000 + 2 * csr.n() as Ns + 4 * csr.m() as Ns
    }

    /// Assembles the final report: makespan, throughput, availability,
    /// per-device stats, and the fault/quarantine timelines.
    fn finish(
        &self,
        mut records: Vec<RequestRecord>,
        mut rejections: Vec<Rejection>,
        batches: Vec<BatchRecord>,
        fault_events: Vec<FaultEvent>,
        quarantines: Vec<QuarantineRecord>,
    ) -> ServeReport {
        records.sort_by_key(|r| r.id);
        rejections.sort_by_key(|r| r.id);
        // CPU-fallback completions have no batch record, so the makespan
        // also covers per-request completion times (identical to the batch
        // maximum on a fault-free run).
        let makespan_ns = batches
            .iter()
            .map(|b| b.completed_ns)
            .chain(records.iter().map(|r| r.arrival_ns + r.latency_ns))
            .max()
            .unwrap_or(0);
        let throughput_qps = if makespan_ns == 0 {
            0.0
        } else {
            records.len() as f64 / (makespan_ns as f64 / 1e9)
        };
        let devices = self
            .workers
            .iter()
            .map(|w| DeviceStats {
                device: w.id as u32,
                busy_ns: w.busy_ns,
                utilization: if makespan_ns == 0 {
                    0.0
                } else {
                    w.busy_ns as f64 / makespan_ns as f64
                },
                uploads: w.uploads,
                evictions: w.evictions,
            })
            .collect();
        let degraded = records.iter().filter(|r| r.degraded).count() as u32;
        let denom = records.len() + rejections.len();
        let availability = if denom == 0 {
            1.0
        } else {
            records.len() as f64 / denom as f64
        };
        ServeReport {
            completed: records.len() as u32,
            rejected: rejections.len() as u32,
            degraded,
            availability,
            makespan_ns,
            throughput_qps,
            records,
            rejections,
            batches,
            devices,
            fault_events,
            quarantines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;

    fn registry_with(names: &[(&str, u64)]) -> GraphRegistry {
        let mut reg = GraphRegistry::new();
        for &(name, seed) in names {
            reg.insert(name, rmat(&RmatConfig::paper(10, 8_000, seed)));
        }
        reg
    }

    fn req(id: u32, graph: &str, source: u32, arrival_ns: Ns) -> Request {
        Request {
            id,
            graph: graph.to_string(),
            class: Priority::Batch,
            source,
            arrival_ns,
            deadline_ns: None,
            timeout_ns: None,
        }
    }

    #[test]
    fn simultaneous_same_graph_requests_share_one_launch() {
        let reg = registry_with(&[("g", 1)]);
        let trace: Vec<Request> = (0..5).map(|i| req(i, "g", i, 0)).collect();
        let mut service = Service::new(&reg, ServeConfig::default());
        let report = service.run(&trace);
        assert_eq!(report.completed, 5);
        assert_eq!(report.batches.len(), 1, "5 waiting sources → one launch");
        assert_eq!(report.batches[0].size, 5);
        // Every answer matches the host reference.
        let g = reg.get("g").unwrap();
        for r in &report.records {
            let levels = reference::bfs(g, r.source);
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
            assert_eq!(r.reached, reached, "request {} reach count", r.id);
        }
    }

    #[test]
    fn batching_cannot_lose_to_unbatched_fifo() {
        let reg = registry_with(&[("g", 1)]);
        let trace: Vec<Request> = (0..12).map(|i| req(i, "g", 3 * i, 0)).collect();
        let batched = Service::new(&reg, ServeConfig::default()).run(&trace);
        let unbatched = Service::new(
            &reg,
            ServeConfig {
                max_batch: 1,
                policy: Policy::Fifo,
                ..ServeConfig::default()
            },
        )
        .run(&trace);
        assert_eq!(batched.completed, 12);
        assert_eq!(unbatched.completed, 12);
        assert!(
            batched.makespan_ns < unbatched.makespan_ns,
            "batched {} ns should beat unbatched {} ns",
            batched.makespan_ns,
            unbatched.makespan_ns
        );
    }

    #[test]
    fn admission_rejects_with_typed_reasons() {
        let reg = registry_with(&[("g", 1)]);
        let n = reg.get("g").unwrap().n() as u32;
        let trace = vec![
            req(0, "nope", 0, 0),
            req(1, "g", n, 0), // first out-of-range id
            req(2, "g", 0, 0),
        ];
        let mut service = Service::new(&reg, ServeConfig::default());
        let report = service.run(&trace);
        assert_eq!(report.completed, 1);
        assert_eq!(report.rejections.len(), 2);
        assert_eq!(report.rejections[0].reason, RejectReason::UnknownGraph);
        assert_eq!(report.rejections[1].reason, RejectReason::SourceOutOfRange);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let reg = registry_with(&[("g", 1)]);
        // Three arrive while the queue holds two: one launch is in flight
        // (the t=0 request), two wait, the third bounces.
        let trace = vec![
            req(0, "g", 0, 0),
            req(1, "g", 1, 1),
            req(2, "g", 2, 1),
            req(3, "g", 3, 1),
        ];
        let cfg = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&trace);
        assert_eq!(report.completed, 3);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].id, 3);
        assert_eq!(report.rejections[0].reason, RejectReason::QueueFull);
    }

    #[test]
    fn priority_policy_serves_interactive_first() {
        let reg = registry_with(&[("a", 1), ("b", 2)]);
        // One launch in flight; then a batch-class and an interactive
        // request (different graphs, so they cannot share a launch).
        let mut trace = vec![req(0, "a", 0, 0)];
        let mut batch_req = req(1, "a", 1, 1);
        batch_req.class = Priority::Batch;
        let mut inter_req = req(2, "b", 2, 2);
        inter_req.class = Priority::Interactive;
        trace.push(batch_req);
        trace.push(inter_req);
        let report = Service::new(&reg, ServeConfig::default()).run(&trace);
        assert_eq!(report.completed, 3);
        let dispatched = |id: u32| {
            let r = report.records.iter().find(|r| r.id == id).unwrap();
            r.arrival_ns + r.queue_wait_ns
        };
        assert!(
            dispatched(2) < dispatched(1),
            "interactive request must dispatch before the earlier batch one"
        );
    }

    #[test]
    fn timeouts_drop_stale_requests_at_dispatch() {
        let reg = registry_with(&[("g", 1)]);
        let mut stale = req(1, "g", 1, 1);
        stale.timeout_ns = Some(10); // far shorter than any BFS launch
        let trace = vec![req(0, "g", 0, 0), stale, req(2, "g", 2, 2)];
        let report = Service::new(&reg, ServeConfig::default()).run(&trace);
        assert_eq!(report.completed, 2);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].id, 1);
        assert_eq!(report.rejections[0].reason, RejectReason::TimedOut);
    }

    #[test]
    fn profiled_service_records_scheduler_and_device_events() {
        let reg = registry_with(&[("g", 1)]);
        let n = reg.get("g").unwrap().n() as u32;
        let trace = vec![req(0, "g", 0, 0), req(1, "g", 1, 0), req(2, "g", n, 0)];
        let cfg = ServeConfig {
            gpu: GpuConfig::default_preset().with_profiling(),
            ..ServeConfig::default()
        };
        let mut service = Service::new(&reg, cfg);
        service.run(&trace);
        let p = service.profile();
        assert_eq!(p.processes.len(), 2, "scheduler + one device");
        let sched = &p.processes[0];
        assert_eq!(sched.name, "scheduler");
        let names: Vec<&str> = sched.events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"enqueue"));
        assert!(names.contains(&"reject"), "out-of-range source rejected");
        assert!(names.contains(&"batch"));
        assert!(p.kernel_busy_ns() > 0, "device process has kernel events");
        // Default config records nothing at all.
        let mut quiet = Service::new(&reg, ServeConfig::default());
        quiet.run(&trace);
        assert_eq!(quiet.profile().event_count(), 0);
    }

    #[test]
    fn zero_timeout_is_rejected_at_its_arrival_tick() {
        // Regression for the boundary bug: the old `>` comparison let a
        // request whose wait exactly equalled its timeout slip through.
        // The pinned semantics are inclusive: wait >= limit is too old,
        // so a zero timeout can never dispatch — not even at the arrival
        // tick, where the wait is exactly 0.
        let reg = registry_with(&[("g", 1)]);
        let mut zero = req(0, "g", 0, 0);
        zero.timeout_ns = Some(0);
        let report = Service::new(&reg, ServeConfig::default()).run(&[zero]);
        assert_eq!(report.completed, 0);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].reason, RejectReason::TimedOut);
        assert_eq!(report.rejections[0].at_ns, 0, "dropped at the arrival tick");
    }

    #[test]
    fn one_shot_fault_is_absorbed_by_a_retry() {
        use eta_fault::{EccFault, FaultPlan};
        let reg = registry_with(&[("g", 1)]);
        // One uncorrectable ECC hit early on device 0; it fires during the
        // first batch, the retry runs on a now-clean device and succeeds.
        let plan = FaultPlan {
            ecc: vec![EccFault {
                device: 0,
                at_ns: 50_000,
                addr_start: 0,
                addr_words: u64::MAX,
                double_bit: true,
            }],
            ..FaultPlan::default()
        };
        let cfg = ServeConfig {
            faults: plan,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.degraded, 0, "device answered after the retry");
        assert_eq!(report.fault_events.len(), 1);
        assert_eq!(report.fault_events[0].kind, "ecc_double_bit");
        assert!(report.quarantines.is_empty(), "one strike is not enough");
        let r = &report.records[0];
        assert_eq!(r.retries, 1);
        assert!(!r.degraded);
        let expect = reference::bfs(reg.get("g").unwrap(), 0);
        let reached = expect.iter().filter(|&&l| l != u32::MAX).count() as u32;
        assert_eq!(r.reached, reached, "retried answer is still correct");
        assert_eq!(report.availability, 1.0);
    }

    #[test]
    fn persistent_faults_quarantine_the_device_and_fall_back_to_cpu() {
        use eta_fault::{FaultPlan, HangFault};
        let reg = registry_with(&[("g", 1)]);
        // A permanent hang window with a tiny budget: every launch on
        // device 0 faults, so the ladder runs to its last rung.
        let plan = FaultPlan {
            hangs: vec![HangFault {
                device: 0,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 1_000,
            }],
            ..FaultPlan::default()
        };
        let cfg = ServeConfig {
            faults: plan,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&[req(0, "g", 0, 0)]);
        // Attempts at retries 0, 1, 2 all hang; the third strike both
        // quarantines the device and exhausts max_retries (2), so the CPU
        // reference answers.
        assert_eq!(report.completed, 1, "no request is lost to faults");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.degraded, 1);
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.fault_events.len(), 3);
        assert!(report
            .fault_events
            .iter()
            .all(|f| f.kind == "kernel_hang" && f.device == 0));
        assert_eq!(report.quarantines.len(), 1, "third strike quarantines");
        let q = &report.quarantines[0];
        assert_eq!(q.device, 0);
        assert!(q.until_ns > q.from_ns);
        let r = &report.records[0];
        assert!(r.degraded);
        assert_eq!(r.retries, 2);
        let expect = reference::bfs(reg.get("g").unwrap(), 0);
        let reached = expect.iter().filter(|&&l| l != u32::MAX).count() as u32;
        assert_eq!(r.reached, reached, "the CPU fallback answer is correct");
        assert!(r.latency_ns > 0);
        assert_eq!(report.makespan_ns, r.arrival_ns + r.latency_ns);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let reg = registry_with(&[("g", 1), ("h", 2)]);
        let plan = eta_fault::FaultPlan::seeded(7, 1, 40_000_000);
        assert!(!plan.is_empty());
        let trace: Vec<Request> = (0..8)
            .map(|i| req(i, if i % 2 == 0 { "g" } else { "h" }, i, (i as Ns) * 10_000))
            .collect();
        let cfg = ServeConfig {
            faults: plan,
            ..ServeConfig::default()
        };
        let a = Service::new(&reg, cfg.clone()).run(&trace);
        let b = Service::new(&reg, cfg).run(&trace);
        let json = |r: &ServeReport| serde_json::to_string(r).expect("report serializes");
        assert_eq!(json(&a), json(&b), "same plan, same trace, same bytes");
        assert_eq!(a.completed + a.rejected, 8, "every request is accounted");
    }

    #[test]
    fn two_devices_split_independent_graphs() {
        let reg = registry_with(&[("a", 1), ("b", 2)]);
        let trace = vec![req(0, "a", 0, 0), req(1, "b", 0, 0)];
        let cfg = ServeConfig {
            devices: 2,
            ..ServeConfig::default()
        };
        let mut service = Service::new(&reg, cfg);
        let report = service.run(&trace);
        assert_eq!(report.completed, 2);
        let used: Vec<u32> = report.batches.iter().map(|b| b.device).collect();
        assert!(used.contains(&0) && used.contains(&1), "both devices used");
        // Both launches start at t=0: the second was not serialized behind
        // the first.
        assert!(report.batches.iter().all(|b| b.dispatched_ns == 0));
    }
}
