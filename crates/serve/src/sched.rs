//! The scheduler: a bounded admission queue in front of the device pool,
//! with priority/deadline ordering and same-graph source batching.
//!
//! The service is a discrete-event simulation driven by one scalar clock.
//! Two kinds of events exist — a request arrives, a device frees up — and
//! between events the scheduler greedily dispatches: it picks the
//! highest-ordered queued request, coalesces up to `max_batch` queued
//! requests for the *same graph* into one [`etagraph::multi_bfs`] launch
//! (one topology read serves all of them), and places the batch on the
//! lowest-numbered idle device. Ties everywhere break on request id or
//! device id, so a trace replays to byte-identical reports.

use crate::pool::DeviceWorker;
use crate::qos::{BrownoutTransition, QosConfig, QosState};
use crate::registry::GraphRegistry;
use crate::report::{
    BatchRecord, DeviceStats, FaultEvent, QuarantineRecord, RequestRecord, ServeReport,
};
use crate::request::{RejectReason, Rejection, Request};
use eta_ckpt::{digest_words, CkptSink, CkptStore};
use eta_fault::{DeviceFault, FaultPlan};
use eta_graph::{reference, Csr};
use eta_mem::Ns;
use eta_prof::{Profile, Profiler, Track};
use eta_sim::GpuConfig;
use etagraph::multi_bfs::MAX_BATCH;
use etagraph::{EtaConfig, QueryError, TransferMode};
use serde::Serialize;

/// Dispatch-order policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Strict arrival order, ties on id.
    Fifo,
    /// Interactive before batch, then earliest deadline, then arrival.
    PriorityDeadline,
}

impl Policy {
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::PriorityDeadline => "priority_deadline",
        }
    }
}

/// Service shape: how many devices, how they are configured, and how the
/// queue behaves.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Configuration each device is built with.
    pub gpu: GpuConfig,
    /// Engine configuration (K, SMP, transfer mode) used for every batch.
    pub eta: EtaConfig,
    /// Bounded queue size; arrivals beyond it are rejected (backpressure).
    pub queue_capacity: usize,
    /// Max same-graph requests coalesced per launch (1 = no batching,
    /// up to [`MAX_BATCH`]).
    pub max_batch: usize,
    pub policy: Policy,
    /// Device-fault injection plan, installed per device at construction.
    /// The default (empty) plan is inert: the service behaves — and its
    /// report serializes — exactly as if the fault machinery did not exist.
    pub faults: FaultPlan,
    /// Device-fault retries per request before the CPU fallback answers it.
    pub max_retries: u32,
    /// First retry delay; doubles per retry (`base << retries`, simulated
    /// time).
    pub backoff_base_ns: Ns,
    /// Consecutive faults (no intervening success) that quarantine a device.
    pub quarantine_after: u32,
    /// How long a quarantined device sits out of dispatch before the
    /// scheduler re-probes it with ordinary traffic.
    pub quarantine_ns: Ns,
    /// Snapshot interval in traversal iterations (0 = checkpointing off;
    /// the service then behaves — and its report serializes — exactly as
    /// if the checkpoint machinery did not exist). With an interval, rung
    /// 0 of the recovery ladder becomes *resume-from-checkpoint*: a
    /// faulted batch restarts from its last snapshot after the backoff,
    /// on the same device (a re-probe) when it is dispatchable again, or
    /// migrated to the lowest-numbered healthy device otherwise.
    pub checkpoint_interval: u32,
    /// Overload control ([`crate::qos`]): admission by deadline
    /// feasibility, worst-first shedding, tenant fair share, a retry
    /// budget over the recovery ladder, and brownout degradation. The
    /// default disables every feature — the service then behaves, and its
    /// report serializes, exactly as if the qos layer did not exist.
    pub qos: QosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 1,
            gpu: GpuConfig::default_preset(),
            eta: EtaConfig::paper(),
            queue_capacity: 256,
            max_batch: MAX_BATCH,
            policy: Policy::PriorityDeadline,
            faults: FaultPlan::default(),
            max_retries: 2,
            backoff_base_ns: 50_000,
            quarantine_after: 3,
            quarantine_ns: 2_000_000,
            checkpoint_interval: 0,
            qos: QosConfig::default(),
        }
    }
}

/// A queued request plus its scheduler-side retry state. The public
/// [`Request`] stays a pure tenant-facing value; retry bookkeeping never
/// leaks into it.
#[derive(Debug, Clone)]
struct Queued {
    req: Request,
    /// Device-fault retries so far.
    retries: u32,
    /// Backoff gate: not dispatchable before this time.
    not_before: Ns,
    /// Qos cost-model estimate at admission (device-ns this request is
    /// expected to consume); feeds the backlog term of later admission
    /// decisions. Unused when qos is off.
    est_ns: Ns,
}

/// A faulted batch with a parked snapshot: rung 0 of the recovery ladder.
/// The snapshot's level slots index the *original* source list, so the
/// resume relaunches the full list even when some riders have already
/// exited to the CPU fallback — only surviving riders produce records.
#[derive(Debug, Clone)]
struct ResumableBatch {
    graph: String,
    /// Source list of the original launch (checkpoint slots index this).
    sources: Vec<u32>,
    /// Surviving riders as (slot into `sources`, queue entry).
    riders: Vec<(usize, Queued)>,
    /// Key of the parked snapshot in the scheduler's checkpoint store.
    ckpt_key: u64,
    /// Device the snapshot was taken on (preferred for the re-probe).
    from_device: usize,
    /// Backoff gate, like [`Queued::not_before`].
    not_before: Ns,
}

/// Mutable per-run scheduler state, bundled so the dispatch paths share
/// one signature instead of a dozen `&mut Vec` parameters.
struct RunState {
    queue: Vec<Queued>,
    resumables: Vec<ResumableBatch>,
    store: CkptStore,
    records: Vec<RequestRecord>,
    rejections: Vec<Rejection>,
    batches: Vec<BatchRecord>,
    fault_events: Vec<FaultEvent>,
    quarantines: Vec<QuarantineRecord>,
    checkpoints: u32,
    resumes: u32,
    migrations: u32,
    work_saved_iterations: u64,
    qos: QosState,
}

impl RunState {
    fn new(qos: &QosConfig) -> Self {
        RunState {
            queue: Vec::new(),
            resumables: Vec::new(),
            store: CkptStore::new(),
            records: Vec::new(),
            rejections: Vec::new(),
            batches: Vec::new(),
            fault_events: Vec::new(),
            quarantines: Vec::new(),
            checkpoints: 0,
            resumes: 0,
            migrations: 0,
            work_saved_iterations: 0,
            qos: QosState::new(qos),
        }
    }
}

/// The running service: registry + device pool + scheduler state.
pub struct Service<'r> {
    registry: &'r GraphRegistry,
    cfg: ServeConfig,
    workers: Vec<DeviceWorker>,
    /// Scheduler-side `eta-prof` events (queue/batch/admission); follows
    /// `cfg.gpu.profiling` like the per-device profilers do.
    prof: Profiler,
}

impl<'r> Service<'r> {
    pub fn new(registry: &'r GraphRegistry, cfg: ServeConfig) -> Self {
        assert!(cfg.devices >= 1, "need at least one device");
        assert!(
            (1..=MAX_BATCH).contains(&cfg.max_batch),
            "max_batch must be 1..={MAX_BATCH}"
        );
        let workers = (0..cfg.devices)
            .map(|id| {
                let mut w = DeviceWorker::new(id, cfg.gpu);
                w.install_faults(&cfg.faults);
                w
            })
            .collect();
        let prof = Profiler::new(cfg.gpu.profiling);
        Service {
            registry,
            cfg,
            workers,
            prof,
        }
    }

    /// The device pool, for post-run inspection (e.g. sanitizer reports).
    pub fn workers(&self) -> &[DeviceWorker] {
        &self.workers
    }

    /// The multi-process `eta-prof` profile: one "scheduler" process for
    /// queue/batch/admission events, one "deviceN" process per worker.
    /// Empty unless the service's [`GpuConfig`] enables profiling.
    pub fn profile(&self) -> Profile {
        let mut p = Profile::new();
        p.push("scheduler", self.prof.events().to_vec());
        for w in &self.workers {
            p.push(&format!("device{}", w.id), w.dev.mem.prof.events().to_vec());
        }
        p
    }

    /// Serves `trace` (must be sorted by arrival time) to completion and
    /// reports what happened. Deterministic: same registry, config, and
    /// trace produce an identical report.
    pub fn run(&mut self, trace: &[Request]) -> ServeReport {
        debug_assert!(
            trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "trace must be sorted by arrival time"
        );
        let mut st = RunState::new(&self.cfg.qos);
        let mut next = 0usize;
        let mut now: Ns = 0;
        loop {
            while next < trace.len() && trace[next].arrival_ns <= now {
                self.admit(&trace[next], now, &mut st);
                next += 1;
            }
            let worker_free = self
                .workers
                .iter()
                .any(|w| w.free_at <= now && w.quarantined_until <= now);
            // Parked batches resume before fresh dispatch: their riders are
            // the oldest work in the system and their snapshots embody
            // iterations already paid for.
            if worker_free && st.resumables.iter().any(|r| r.not_before <= now) {
                self.dispatch_resume(now, &mut st);
                continue;
            }
            if worker_free && st.queue.iter().any(|q| q.not_before <= now) {
                self.dispatch(now, &mut st);
                continue;
            }
            // Nothing dispatchable: advance to the next event.
            let t_arrival = trace.get(next).map(|r| r.arrival_ns);
            let t_worker = if st.queue.is_empty() && st.resumables.is_empty() {
                None // an idle device with no pending work is not an event
            } else {
                self.workers
                    .iter()
                    .flat_map(|w| [w.free_at, w.quarantined_until])
                    .filter(|&t| t > now)
                    .min()
            };
            // Backoff gates are events too: a retried request (or a parked
            // batch) wakes the loop when its `not_before` passes, even with
            // devices idle.
            let t_backoff = st
                .queue
                .iter()
                .map(|q| q.not_before)
                .chain(st.resumables.iter().map(|r| r.not_before))
                .filter(|&t| t > now)
                .min();
            match [t_arrival, t_worker, t_backoff].into_iter().flatten().min() {
                Some(t) => now = t,
                None => break,
            }
        }
        // Quarantine-audit invariant: a device pulled from dispatch
        // mid-batch must never strand its riders — everything queued was
        // either answered or rejected by the time the loop drains.
        debug_assert!(
            st.queue.is_empty() && st.resumables.is_empty(),
            "the event loop may not leave requests stranded"
        );
        self.finish(st)
    }

    /// One typed refusal: the prof instant plus the [`Rejection`] record.
    fn reject(&mut self, id: u32, reason: RejectReason, now: Ns, st: &mut RunState) {
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Sched,
                "reject",
                now,
                vec![("id", id.into()), ("reason", reason.name().into())],
            );
        }
        st.rejections.push(Rejection {
            id,
            reason,
            at_ns: now,
        });
    }

    /// Admission control at arrival time. Every refusal is a typed
    /// [`Rejection`]; admitted requests enter the bounded queue. With qos
    /// features on, arrival is also where overload policy bites: deadline
    /// feasibility, tenant fair share, and worst-first shedding at
    /// capacity — arbitrate before you spend.
    fn admit(&mut self, req: &Request, now: Ns, st: &mut RunState) {
        let Some(csr) = self.registry.get(&req.graph) else {
            return self.reject(req.id, RejectReason::UnknownGraph, now, st);
        };
        if req.source as usize >= csr.n() {
            return self.reject(req.id, RejectReason::SourceOutOfRange, now, st);
        }
        // A graph whose footprint exceeds the device even when it is the
        // sole tenant can never be served; refuse it upfront rather than
        // letting it evict everyone else and still fail.
        let capacity = self.workers[0].dev.mem.capacity_bytes();
        if DeviceWorker::footprint_bytes(csr, &self.cfg.eta) > capacity {
            return self.reject(req.id, RejectReason::AdmissionDenied, now, st);
        }
        let est_ns = st.qos.cost.estimate(&req.graph, csr, &self.cfg.eta);
        // Deadline feasibility: predicted completion = the earliest any
        // device frees up, plus the queued backlog spread across the pool,
        // plus this request's own estimate. A request that cannot make its
        // deadline even under that optimistic schedule is refused now,
        // before it wastes queue space and device time on a guaranteed
        // SLO miss.
        if self.cfg.qos.admission {
            if let Some(deadline) = req.deadline_ns {
                let backlog: Ns = st.queue.iter().map(|q| q.est_ns).sum();
                let earliest_free = self
                    .workers
                    .iter()
                    .map(|w| w.free_at.max(w.quarantined_until))
                    .min()
                    .unwrap_or(now)
                    .max(now);
                let predicted = earliest_free + backlog / self.cfg.devices as Ns + est_ns;
                if predicted > deadline {
                    st.qos.stats.admission_rejections += 1;
                    if self.prof.is_enabled() {
                        self.prof.instant(
                            Track::Qos,
                            "admission_infeasible",
                            now,
                            vec![
                                ("id", req.id.into()),
                                ("predicted_ns", predicted.into()),
                                ("deadline_ns", deadline.into()),
                            ],
                        );
                    }
                    return self.reject(req.id, RejectReason::DeadlineInfeasible, now, st);
                }
            }
        }
        // Tenant fair share, enforced only under congestion so the policy
        // stays work-conserving: an idle pool serves anyone, a backlogged
        // pool charges each tenant's bucket for its estimated device time.
        if self.cfg.qos.fair_share
            && st.queue.len() >= self.cfg.qos.fair_share_min_queue
            && !st
                .qos
                .tenant_try_charge(&self.cfg.qos, &req.graph, now, est_ns)
        {
            st.qos.stats.throttle_rejections += 1;
            if self.prof.is_enabled() {
                self.prof.instant(
                    Track::Qos,
                    "tenant_throttled",
                    now,
                    vec![("id", req.id.into()), ("tenant", req.graph.as_str().into())],
                );
            }
            return self.reject(req.id, RejectReason::TenantThrottled, now, st);
        }
        if st.queue.len() >= self.cfg.queue_capacity {
            if !self.cfg.qos.shed {
                return self.reject(req.id, RejectReason::QueueFull, now, st);
            }
            // Deterministic worst-first shedding: among the queue and the
            // newcomer, drop the entry with (lowest priority, latest
            // deadline, highest id) — ids are unique, so there are no ties.
            let key = |q: &Queued| {
                (
                    q.req.class.rank(),
                    q.req.deadline_ns.unwrap_or(Ns::MAX),
                    q.req.id,
                )
            };
            let newcomer_key = (req.class.rank(), req.deadline_ns.unwrap_or(Ns::MAX), req.id);
            let worst = st
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(_, q)| key(q))
                .map(|(i, q)| (i, key(q)))
                // lint: allow(L-PANIC): this branch only runs when queue.len() >= capacity >= 1
                .expect("queue is at capacity, so non-empty");
            st.qos.stats.shed_rejections += 1;
            if worst.1 > newcomer_key {
                // The newcomer displaces a worse queued entry.
                let victim = st.queue.remove(worst.0);
                if self.prof.is_enabled() {
                    self.prof.instant(
                        Track::Qos,
                        "shed",
                        now,
                        vec![
                            ("id", victim.req.id.into()),
                            ("displaced_by", req.id.into()),
                        ],
                    );
                }
                self.reject(victim.req.id, RejectReason::ShedOverload, now, st);
            } else {
                if self.prof.is_enabled() {
                    self.prof
                        .instant(Track::Qos, "shed", now, vec![("id", req.id.into())]);
                }
                return self.reject(req.id, RejectReason::ShedOverload, now, st);
            }
        }
        st.queue.push(Queued {
            req: req.clone(),
            retries: 0,
            not_before: now,
            est_ns,
        });
        st.qos.note_depth(st.queue.len());
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Sched,
                "enqueue",
                now,
                vec![
                    ("id", req.id.into()),
                    ("graph", req.graph.as_str().into()),
                    ("class", req.class.name().into()),
                    ("depth", st.queue.len().into()),
                ],
            );
        }
    }

    /// One dispatch decision at time `now`: drop expired requests, order
    /// the queue by policy, coalesce the head's graph-mates into a batch,
    /// and run it on the lowest-numbered idle (and not quarantined) device.
    ///
    /// A batch that fails with [`QueryError::DeviceFault`] walks the
    /// recovery ladder: each rider is re-queued with exponential backoff
    /// until `max_retries`, after which the CPU reference answers it with
    /// `degraded: true`. The faulting device accrues consecutive-fault
    /// strikes and is quarantined at `quarantine_after`.
    fn dispatch(&mut self, now: Ns, st: &mut RunState) {
        let prof = &mut self.prof;
        let rejections = &mut st.rejections;
        // Timeout semantics are inclusive at the boundary tick: a request
        // whose wait has *reached* its limit is already too old to serve
        // (so `timeout_ns: Some(0)` never dispatches, even at its own
        // arrival tick).
        st.queue.retain(|q| match q.req.timeout_ns {
            Some(limit) if now - q.req.arrival_ns >= limit => {
                if prof.is_enabled() {
                    prof.instant(
                        Track::Sched,
                        "reject",
                        now,
                        vec![
                            ("id", q.req.id.into()),
                            ("reason", RejectReason::TimedOut.name().into()),
                        ],
                    );
                }
                rejections.push(Rejection {
                    id: q.req.id,
                    reason: RejectReason::TimedOut,
                    at_ns: now,
                });
                false
            }
            _ => true,
        });
        // Brownout state is sampled once per dispatch decision; transitions
        // observed below take effect at the *next* dispatch (hysteresis by
        // construction — one decision is never half-degraded).
        let brownout = self.cfg.qos.brownout && st.qos.brownout_active;
        match self.cfg.policy {
            Policy::Fifo => st.queue.sort_by_key(|q| (q.req.arrival_ns, q.req.id)),
            // Under brownout, best-effort (deadline-less) requests are
            // demoted below every SLO-bound class so deadline traffic
            // drains first.
            Policy::PriorityDeadline => st.queue.sort_by_key(|q| {
                let rank = q.req.class.rank()
                    + if brownout && q.req.deadline_ns.is_none() {
                        2
                    } else {
                        0
                    };
                (
                    rank,
                    q.req.deadline_ns.unwrap_or(Ns::MAX),
                    q.req.arrival_ns,
                    q.req.id,
                )
            }),
        }
        // The first dispatchable entry (backoff gate passed) defines the
        // batch's graph; later dispatchable entries for the same graph ride
        // along, up to `max_batch`. Entries still backing off stay queued.
        let Some(head) = st.queue.iter().find(|q| q.not_before <= now) else {
            return; // every dispatchable entry timed out above
        };
        let graph = head.req.graph.clone();
        // Brownout degradation applies to a best-effort head: the batch
        // runs in zero-copy mode (no bulk upload contending with SLO
        // traffic), trading its own kernel time for bus headroom. A
        // degraded batch only coalesces other best-effort riders so an
        // SLO-bound request never rides a degraded launch.
        let degrade = brownout && head.req.deadline_ns.is_none();
        let head_wait = now - head.req.arrival_ns;
        let mut batch: Vec<Queued> = Vec::new();
        let max_batch = self.cfg.max_batch;
        st.queue.retain(|q| {
            if batch.len() < max_batch
                && q.req.graph == graph
                && q.not_before <= now
                && (!brownout || (q.req.deadline_ns.is_none() == degrade))
            {
                batch.push(q.clone());
                false
            } else {
                true
            }
        });
        // Queue-delay EWMA drives the brownout state machine: the wait the
        // dispatched head experienced is the freshest congestion signal.
        if self.cfg.qos.brownout {
            match st.qos.observe_wait(&self.cfg.qos, head_wait) {
                Some(BrownoutTransition::Entered) if self.prof.is_enabled() => {
                    self.prof.instant(
                        Track::Qos,
                        "brownout_enter",
                        now,
                        vec![("wait_ewma_ns", st.qos.wait_ewma().into())],
                    );
                }
                Some(BrownoutTransition::Exited) if self.prof.is_enabled() => {
                    self.prof.instant(
                        Track::Qos,
                        "brownout_exit",
                        now,
                        vec![("wait_ewma_ns", st.qos.wait_ewma().into())],
                    );
                }
                _ => {}
            }
        }
        let widx = self
            .workers
            .iter()
            .position(|w| w.free_at <= now && w.quarantined_until <= now)
            .expect("dispatch requires an idle worker");
        let worker = &mut self.workers[widx];
        let csr = self.registry.get(&graph).expect("validated at admission");
        let run_cfg = if degrade {
            EtaConfig {
                transfer: TransferMode::ZeroCopy,
                ..self.cfg.eta
            }
        } else {
            self.cfg.eta
        };
        let cfg = &run_cfg;
        let ready = match worker.ensure_resident(&graph, csr, cfg, now) {
            Ok(t) => t,
            Err(_) => {
                // The pool could not make room (e.g. memory fragmentation
                // across co-resident tenants). Refuse this batch; the rest
                // of the queue keeps flowing.
                for q in &batch {
                    if self.prof.is_enabled() {
                        self.prof.instant(
                            Track::Sched,
                            "reject",
                            now,
                            vec![
                                ("id", q.req.id.into()),
                                ("reason", RejectReason::AdmissionDenied.name().into()),
                            ],
                        );
                    }
                    st.rejections.push(Rejection {
                        id: q.req.id,
                        reason: RejectReason::AdmissionDenied,
                        at_ns: now,
                    });
                }
                return;
            }
        };
        worker.pin(&graph);
        let sources: Vec<u32> = batch.iter().map(|q| q.req.source).collect();
        let mut sink = CkptSink::every(self.cfg.checkpoint_interval);
        let result = if self.cfg.checkpoint_interval == 0 {
            worker.run_batch(&graph, &sources, cfg, ready)
        } else {
            worker.run_batch_ckpt(&graph, &sources, cfg, ready, &mut sink, None)
        };
        worker.unpin(&graph);
        st.checkpoints += sink.taken;
        let result = match result {
            Ok(r) => r,
            Err(QueryError::DeviceFault(fault)) => {
                let fail_at = self.note_fault(widx, fault, now, st);
                let device = widx as u32;
                // Rung 0: with a snapshot in hand, surviving riders park as
                // a resumable batch instead of restarting from scratch.
                let parked = sink.take();
                let mut riders: Vec<(usize, Queued)> = Vec::new();
                let mut min_retries = u32::MAX;
                for (slot, q) in batch.into_iter().enumerate() {
                    if q.retries >= self.cfg.max_retries {
                        self.cpu_fallback(&q, csr, now, fail_at, device, st);
                    } else if !st.qos.retry_try_take(&self.cfg.qos, fail_at) {
                        // Retry budget exhausted: under correlated faults,
                        // unbudgeted retries amplify load exactly when the
                        // pool is weakest. Skip the remaining rungs and
                        // degrade straight to the CPU fallback.
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Qos,
                                "retry_denied",
                                fail_at,
                                vec![("id", q.req.id.into())],
                            );
                        }
                        self.cpu_fallback(&q, csr, now, fail_at, device, st);
                    } else if parked.is_some() {
                        min_retries = min_retries.min(q.retries);
                        riders.push((
                            slot,
                            Queued {
                                retries: q.retries + 1,
                                not_before: 0, // set below, once the gate is known
                                req: q.req,
                                est_ns: q.est_ns,
                            },
                        ));
                    } else {
                        // Rung 1 (no snapshot yet — the fault beat the first
                        // interval): re-queue with exponential backoff. The
                        // gate is strictly in the future, so the event loop
                        // always advances.
                        let delay = self.cfg.backoff_base_ns << q.retries;
                        let not_before = (fail_at + delay).max(now + 1);
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Fault,
                                "retry",
                                fail_at,
                                vec![("id", q.req.id.into()), ("not_before", not_before.into())],
                            );
                        }
                        st.queue.push(Queued {
                            retries: q.retries + 1,
                            not_before,
                            req: q.req,
                            est_ns: q.est_ns,
                        });
                    }
                }
                if let Some(ck) = parked {
                    if !riders.is_empty() {
                        let delay = self.cfg.backoff_base_ns << min_retries;
                        let not_before = (fail_at + delay).max(now + 1);
                        for (_, q) in &mut riders {
                            q.not_before = not_before;
                        }
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Ckpt,
                                "park",
                                fail_at,
                                vec![
                                    ("device", device.into()),
                                    ("iteration", ck.iteration.into()),
                                    ("riders", riders.len().into()),
                                ],
                            );
                        }
                        let ckpt_key = st.store.put(ck);
                        st.resumables.push(ResumableBatch {
                            graph,
                            sources,
                            riders,
                            ckpt_key,
                            from_device: widx,
                            not_before,
                        });
                    }
                    // Every rider already exited to the CPU reference: the
                    // snapshot has no one left to serve and is dropped.
                }
                return;
            }
            Err(e) => unreachable!("sources validated at admission: {e}"),
        };
        let worker = &mut self.workers[widx];
        worker.consecutive_faults = 0;
        let completion = ready + result.total_ns;
        worker.busy_ns += completion - now;
        worker.free_at = completion;
        // Calibrate the cost model with the measured per-request device
        // time. Degraded (zero-copy) launches are excluded: their costs
        // would bias estimates for the normal path.
        if !degrade {
            st.qos.cost.observe(
                &graph,
                csr,
                &self.cfg.eta,
                result.total_ns / batch.len() as Ns,
            );
        } else {
            st.qos.stats.brownout_batches += 1;
            // lint: allow(L-CAST-TRUNC): batch size is bounded by cfg.max_batch (<= 32)
            st.qos.stats.brownout_downgrades += batch.len() as u32;
        }
        st.batches.push(BatchRecord {
            device: widx as u32,
            graph: graph.clone(),
            size: batch.len() as u32,
            dispatched_ns: now,
            started_ns: ready,
            completed_ns: completion,
        });
        for (k, q) in batch.iter().enumerate() {
            let r = &q.req;
            let reached = result.levels[k].iter().filter(|&&l| l != u32::MAX).count() as u32;
            st.records.push(RequestRecord {
                id: r.id,
                graph: r.graph.clone(),
                class: r.class,
                source: r.source,
                arrival_ns: r.arrival_ns,
                queue_wait_ns: now - r.arrival_ns,
                transfer_ns: (completion - now) - result.kernel_ns,
                compute_ns: result.kernel_ns,
                latency_ns: completion - r.arrival_ns,
                batch_size: batch.len() as u32,
                device: widx as u32,
                reached,
                levels_digest: digest_words(&[&result.levels[k]]),
                deadline_met: r.deadline_ns.map(|d| completion <= d),
                degraded: false,
                retries: q.retries,
            });
        }
        if self.prof.is_enabled() {
            self.prof.record(
                Track::Sched,
                "batch",
                now,
                completion,
                vec![
                    ("graph", graph.as_str().into()),
                    ("device", (widx as u32).into()),
                    ("size", batch.len().into()),
                ],
            );
        }
    }

    /// Rung 0 of the recovery ladder: relaunch a faulted batch from its
    /// parked snapshot. The snapshot's own device is preferred once its
    /// backoff has passed (a re-probe); when that device is busy or
    /// quarantined the batch migrates to the lowest-numbered healthy
    /// device whose residency admits the graph.
    fn dispatch_resume(&mut self, now: Ns, st: &mut RunState) {
        // Deterministic pick: earliest gate, then lowest surviving rider id
        // (rider ids are unique across the whole system, so this total
        // order has no ties).
        let idx = st
            .resumables
            .iter()
            .enumerate()
            .filter(|(_, r)| r.not_before <= now)
            .min_by_key(|(_, r)| {
                let min_id = r.riders.iter().map(|(_, q)| q.req.id).min();
                (r.not_before, min_id.unwrap_or(u32::MAX))
            })
            .map(|(i, _)| i)
            .expect("caller checked a resumable is ready");
        let rb = st.resumables.remove(idx);
        let preferred_free = self.workers[rb.from_device].free_at <= now
            && self.workers[rb.from_device].quarantined_until <= now;
        let widx = if preferred_free {
            rb.from_device
        } else {
            self.workers
                .iter()
                .position(|w| w.free_at <= now && w.quarantined_until <= now)
                .expect("caller checked an idle worker")
        };
        let migrated = widx != rb.from_device;
        let Some(ck) = st.store.take(rb.ckpt_key) else {
            // Defensive: a missing snapshot demotes the riders to ordinary
            // retries (their backoff gates have already passed).
            st.queue.extend(rb.riders.into_iter().map(|(_, q)| q));
            return;
        };
        let csr = self
            .registry
            .get(&rb.graph)
            .expect("validated at admission");
        let cfg = &self.cfg.eta;
        let worker = &mut self.workers[widx];
        let ready = match worker.ensure_resident(&rb.graph, csr, cfg, now) {
            Ok(t) => t,
            Err(_) => {
                // The healthy device cannot host the graph right now
                // (residency pressure). Demote: the riders re-enter the
                // ordinary queue and the ladder continues without the
                // snapshot.
                st.queue.extend(rb.riders.into_iter().map(|(_, q)| q));
                return;
            }
        };
        worker.pin(&rb.graph);
        let mut sink = CkptSink::every(self.cfg.checkpoint_interval);
        let saved_iterations = ck.iteration;
        let result =
            worker.run_batch_ckpt(&rb.graph, &rb.sources, cfg, ready, &mut sink, Some(&ck));
        worker.unpin(&rb.graph);
        st.checkpoints += sink.taken;
        match result {
            Ok(result) => {
                let worker = &mut self.workers[widx];
                worker.consecutive_faults = 0;
                let completion = ready + result.total_ns;
                worker.busy_ns += completion - now;
                worker.free_at = completion;
                st.resumes += 1;
                st.work_saved_iterations += saved_iterations as u64;
                if migrated {
                    st.migrations += 1;
                }
                if self.prof.is_enabled() {
                    self.prof.instant(
                        Track::Ckpt,
                        if migrated { "migrate" } else { "resume" },
                        now,
                        vec![
                            ("device", (widx as u32).into()),
                            ("from_device", (rb.from_device as u32).into()),
                            ("iteration", saved_iterations.into()),
                            ("riders", rb.riders.len().into()),
                        ],
                    );
                }
                st.batches.push(BatchRecord {
                    device: widx as u32,
                    graph: rb.graph.clone(),
                    size: rb.riders.len() as u32,
                    dispatched_ns: now,
                    started_ns: ready,
                    completed_ns: completion,
                });
                for (slot, q) in &rb.riders {
                    let r = &q.req;
                    let levels = &result.levels[*slot];
                    let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
                    st.records.push(RequestRecord {
                        id: r.id,
                        graph: r.graph.clone(),
                        class: r.class,
                        source: r.source,
                        arrival_ns: r.arrival_ns,
                        queue_wait_ns: now - r.arrival_ns,
                        transfer_ns: (completion - now) - result.kernel_ns,
                        compute_ns: result.kernel_ns,
                        latency_ns: completion - r.arrival_ns,
                        batch_size: rb.riders.len() as u32,
                        device: widx as u32,
                        reached,
                        levels_digest: digest_words(&[levels]),
                        deadline_met: r.deadline_ns.map(|d| completion <= d),
                        degraded: false,
                        retries: q.retries,
                    });
                }
            }
            Err(QueryError::DeviceFault(fault)) => {
                let fail_at = self.note_fault(widx, fault, now, st);
                let device = widx as u32;
                // Progress is never thrown away: a snapshot taken during
                // the resumed run supersedes the old one; otherwise the old
                // snapshot is re-parked — the iterations it saved are still
                // saved.
                let parked = sink.take().unwrap_or(ck);
                let mut riders: Vec<(usize, Queued)> = Vec::new();
                let mut min_retries = u32::MAX;
                for (slot, q) in rb.riders {
                    if q.retries >= self.cfg.max_retries {
                        self.cpu_fallback(&q, csr, now, fail_at, device, st);
                    } else if !st.qos.retry_try_take(&self.cfg.qos, fail_at) {
                        // Same budget as the fresh-dispatch ladder: a resume
                        // retry is still a retry.
                        if self.prof.is_enabled() {
                            self.prof.instant(
                                Track::Qos,
                                "retry_denied",
                                fail_at,
                                vec![("id", q.req.id.into())],
                            );
                        }
                        self.cpu_fallback(&q, csr, now, fail_at, device, st);
                    } else {
                        min_retries = min_retries.min(q.retries);
                        riders.push((
                            slot,
                            Queued {
                                retries: q.retries + 1,
                                not_before: 0, // set below
                                req: q.req,
                                est_ns: q.est_ns,
                            },
                        ));
                    }
                }
                if !riders.is_empty() {
                    let delay = self.cfg.backoff_base_ns << min_retries;
                    let not_before = (fail_at + delay).max(now + 1);
                    for (_, q) in &mut riders {
                        q.not_before = not_before;
                    }
                    if self.prof.is_enabled() {
                        self.prof.instant(
                            Track::Ckpt,
                            "park",
                            fail_at,
                            vec![
                                ("device", device.into()),
                                ("iteration", parked.iteration.into()),
                                ("riders", riders.len().into()),
                            ],
                        );
                    }
                    let ckpt_key = st.store.put(parked);
                    st.resumables.push(ResumableBatch {
                        graph: rb.graph,
                        sources: rb.sources,
                        riders,
                        ckpt_key,
                        from_device: widx,
                        not_before,
                    });
                }
            }
            Err(QueryError::Checkpoint(_)) => {
                // The snapshot did not validate against the resident graph
                // (stale epoch or shape mismatch). Treat as "no usable
                // checkpoint": the riders restart from scratch through the
                // ordinary queue.
                st.queue.extend(rb.riders.into_iter().map(|(_, q)| q));
            }
            Err(e) => unreachable!("sources validated at admission: {e}"),
        }
    }

    /// Shared device-fault bookkeeping: clock/busy accounting, the fault
    /// event, the consecutive-strike counter, and quarantine when the
    /// strikes reach the threshold. Returns the fault time on the service
    /// clock.
    fn note_fault(&mut self, widx: usize, fault: DeviceFault, now: Ns, st: &mut RunState) -> Ns {
        let worker = &mut self.workers[widx];
        // The device clock stopped where the fault surfaced; the worker was
        // busy (and the requests were in flight) until then.
        let fail_at = fault.at_ns.max(now);
        worker.busy_ns += fail_at - now;
        worker.free_at = fail_at;
        worker.consecutive_faults += 1;
        worker.faults += 1;
        let device = worker.id as u32;
        let strikes = worker.consecutive_faults;
        st.fault_events.push(FaultEvent {
            device,
            kind: fault.kind.name().to_string(),
            at_ns: fault.at_ns,
        });
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Fault,
                "device_fault",
                fail_at,
                vec![
                    ("device", device.into()),
                    ("kind", fault.kind.name().into()),
                ],
            );
        }
        if strikes >= self.cfg.quarantine_after {
            let worker = &mut self.workers[widx];
            worker.quarantined_until = fail_at + self.cfg.quarantine_ns;
            worker.consecutive_faults = 0;
            let until_ns = worker.quarantined_until;
            st.quarantines.push(QuarantineRecord {
                device,
                from_ns: fail_at,
                until_ns,
            });
            if self.prof.is_enabled() {
                self.prof.instant(
                    Track::Fault,
                    "quarantine",
                    fail_at,
                    vec![("device", device.into()), ("until_ns", until_ns.into())],
                );
            }
        }
        fail_at
    }

    /// Rung 3: the CPU reference answers a rider whose retry budget is
    /// exhausted. Slow but sure — the response is correct, only the path
    /// is degraded.
    fn cpu_fallback(
        &mut self,
        q: &Queued,
        csr: &Csr,
        now: Ns,
        fail_at: Ns,
        device: u32,
        st: &mut RunState,
    ) {
        let levels = reference::bfs(csr, q.req.source);
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
        let cpu_ns = Self::cpu_fallback_ns(csr);
        let completion = fail_at + cpu_ns;
        if self.prof.is_enabled() {
            self.prof.instant(
                Track::Fault,
                "cpu_fallback",
                fail_at,
                vec![("id", q.req.id.into()), ("cpu_ns", cpu_ns.into())],
            );
        }
        st.records.push(RequestRecord {
            id: q.req.id,
            graph: q.req.graph.clone(),
            class: q.req.class,
            source: q.req.source,
            arrival_ns: q.req.arrival_ns,
            queue_wait_ns: now - q.req.arrival_ns,
            transfer_ns: 0,
            compute_ns: cpu_ns,
            latency_ns: completion - q.req.arrival_ns,
            batch_size: 1,
            device,
            reached,
            levels_digest: digest_words(&[&levels]),
            deadline_met: q.req.deadline_ns.map(|d| completion <= d),
            degraded: true,
            retries: q.retries,
        });
    }

    /// Simulated cost of a host-side [`reference::bfs`] answer: a fixed
    /// software overhead plus memory-bound per-vertex and per-edge walks,
    /// far off the GPU's rates. Deterministic by construction.
    fn cpu_fallback_ns(csr: &Csr) -> Ns {
        10_000 + 2 * csr.n() as Ns + 4 * csr.m() as Ns
    }

    /// Assembles the final report: makespan, throughput, availability,
    /// per-device stats, and the fault/quarantine timelines.
    fn finish(&self, st: RunState) -> ServeReport {
        let RunState {
            mut records,
            mut rejections,
            batches,
            fault_events,
            quarantines,
            checkpoints,
            resumes,
            migrations,
            work_saved_iterations,
            qos,
            ..
        } = st;
        records.sort_by_key(|r| r.id);
        rejections.sort_by_key(|r| r.id);
        // CPU-fallback completions have no batch record, so the makespan
        // also covers per-request completion times (identical to the batch
        // maximum on a fault-free run).
        let makespan_ns = batches
            .iter()
            .map(|b| b.completed_ns)
            .chain(records.iter().map(|r| r.arrival_ns + r.latency_ns))
            .max()
            .unwrap_or(0);
        let throughput_qps = if makespan_ns == 0 {
            0.0
        } else {
            records.len() as f64 / (makespan_ns as f64 / 1e9)
        };
        let devices = self
            .workers
            .iter()
            .map(|w| DeviceStats {
                device: w.id as u32,
                busy_ns: w.busy_ns,
                utilization: if makespan_ns == 0 {
                    0.0
                } else {
                    w.busy_ns as f64 / makespan_ns as f64
                },
                uploads: w.uploads,
                evictions: w.evictions,
            })
            .collect();
        let degraded = records.iter().filter(|r| r.degraded).count() as u32;
        let denom = records.len() + rejections.len();
        let availability = if denom == 0 {
            1.0
        } else {
            records.len() as f64 / denom as f64
        };
        ServeReport {
            completed: records.len() as u32,
            rejected: rejections.len() as u32,
            degraded,
            availability,
            makespan_ns,
            throughput_qps,
            records,
            rejections,
            batches,
            devices,
            fault_events,
            quarantines,
            checkpoints,
            resumes,
            migrations,
            work_saved_iterations,
            groups: Vec::new(),
            qos: if self.cfg.qos.any_enabled() {
                Some(qos.stats)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;

    fn registry_with(names: &[(&str, u64)]) -> GraphRegistry {
        let mut reg = GraphRegistry::new();
        for &(name, seed) in names {
            reg.insert(name, rmat(&RmatConfig::paper(10, 8_000, seed)));
        }
        reg
    }

    fn req(id: u32, graph: &str, source: u32, arrival_ns: Ns) -> Request {
        Request {
            id,
            graph: graph.to_string(),
            class: Priority::Batch,
            source,
            arrival_ns,
            deadline_ns: None,
            timeout_ns: None,
        }
    }

    #[test]
    fn simultaneous_same_graph_requests_share_one_launch() {
        let reg = registry_with(&[("g", 1)]);
        let trace: Vec<Request> = (0..5).map(|i| req(i, "g", i, 0)).collect();
        let mut service = Service::new(&reg, ServeConfig::default());
        let report = service.run(&trace);
        assert_eq!(report.completed, 5);
        assert_eq!(report.batches.len(), 1, "5 waiting sources → one launch");
        assert_eq!(report.batches[0].size, 5);
        // Every answer matches the host reference.
        let g = reg.get("g").unwrap();
        for r in &report.records {
            let levels = reference::bfs(g, r.source);
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
            assert_eq!(r.reached, reached, "request {} reach count", r.id);
        }
    }

    #[test]
    fn batching_cannot_lose_to_unbatched_fifo() {
        let reg = registry_with(&[("g", 1)]);
        let trace: Vec<Request> = (0..12).map(|i| req(i, "g", 3 * i, 0)).collect();
        let batched = Service::new(&reg, ServeConfig::default()).run(&trace);
        let unbatched = Service::new(
            &reg,
            ServeConfig {
                max_batch: 1,
                policy: Policy::Fifo,
                ..ServeConfig::default()
            },
        )
        .run(&trace);
        assert_eq!(batched.completed, 12);
        assert_eq!(unbatched.completed, 12);
        assert!(
            batched.makespan_ns < unbatched.makespan_ns,
            "batched {} ns should beat unbatched {} ns",
            batched.makespan_ns,
            unbatched.makespan_ns
        );
    }

    #[test]
    fn admission_rejects_with_typed_reasons() {
        let reg = registry_with(&[("g", 1)]);
        let n = reg.get("g").unwrap().n() as u32;
        let trace = vec![
            req(0, "nope", 0, 0),
            req(1, "g", n, 0), // first out-of-range id
            req(2, "g", 0, 0),
        ];
        let mut service = Service::new(&reg, ServeConfig::default());
        let report = service.run(&trace);
        assert_eq!(report.completed, 1);
        assert_eq!(report.rejections.len(), 2);
        assert_eq!(report.rejections[0].reason, RejectReason::UnknownGraph);
        assert_eq!(report.rejections[1].reason, RejectReason::SourceOutOfRange);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let reg = registry_with(&[("g", 1)]);
        // Three arrive while the queue holds two: one launch is in flight
        // (the t=0 request), two wait, the third bounces.
        let trace = vec![
            req(0, "g", 0, 0),
            req(1, "g", 1, 1),
            req(2, "g", 2, 1),
            req(3, "g", 3, 1),
        ];
        let cfg = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&trace);
        assert_eq!(report.completed, 3);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].id, 3);
        assert_eq!(report.rejections[0].reason, RejectReason::QueueFull);
    }

    #[test]
    fn priority_policy_serves_interactive_first() {
        let reg = registry_with(&[("a", 1), ("b", 2)]);
        // One launch in flight; then a batch-class and an interactive
        // request (different graphs, so they cannot share a launch).
        let mut trace = vec![req(0, "a", 0, 0)];
        let mut batch_req = req(1, "a", 1, 1);
        batch_req.class = Priority::Batch;
        let mut inter_req = req(2, "b", 2, 2);
        inter_req.class = Priority::Interactive;
        trace.push(batch_req);
        trace.push(inter_req);
        let report = Service::new(&reg, ServeConfig::default()).run(&trace);
        assert_eq!(report.completed, 3);
        let dispatched = |id: u32| {
            let r = report.records.iter().find(|r| r.id == id).unwrap();
            r.arrival_ns + r.queue_wait_ns
        };
        assert!(
            dispatched(2) < dispatched(1),
            "interactive request must dispatch before the earlier batch one"
        );
    }

    #[test]
    fn timeouts_drop_stale_requests_at_dispatch() {
        let reg = registry_with(&[("g", 1)]);
        let mut stale = req(1, "g", 1, 1);
        stale.timeout_ns = Some(10); // far shorter than any BFS launch
        let trace = vec![req(0, "g", 0, 0), stale, req(2, "g", 2, 2)];
        let report = Service::new(&reg, ServeConfig::default()).run(&trace);
        assert_eq!(report.completed, 2);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].id, 1);
        assert_eq!(report.rejections[0].reason, RejectReason::TimedOut);
    }

    #[test]
    fn profiled_service_records_scheduler_and_device_events() {
        let reg = registry_with(&[("g", 1)]);
        let n = reg.get("g").unwrap().n() as u32;
        let trace = vec![req(0, "g", 0, 0), req(1, "g", 1, 0), req(2, "g", n, 0)];
        let cfg = ServeConfig {
            gpu: GpuConfig::default_preset().with_profiling(),
            ..ServeConfig::default()
        };
        let mut service = Service::new(&reg, cfg);
        service.run(&trace);
        let p = service.profile();
        assert_eq!(p.processes.len(), 2, "scheduler + one device");
        let sched = &p.processes[0];
        assert_eq!(sched.name, "scheduler");
        let names: Vec<&str> = sched.events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"enqueue"));
        assert!(names.contains(&"reject"), "out-of-range source rejected");
        assert!(names.contains(&"batch"));
        assert!(p.kernel_busy_ns() > 0, "device process has kernel events");
        // Default config records nothing at all.
        let mut quiet = Service::new(&reg, ServeConfig::default());
        quiet.run(&trace);
        assert_eq!(quiet.profile().event_count(), 0);
    }

    #[test]
    fn zero_timeout_is_rejected_at_its_arrival_tick() {
        // Regression for the boundary bug: the old `>` comparison let a
        // request whose wait exactly equalled its timeout slip through.
        // The pinned semantics are inclusive: wait >= limit is too old,
        // so a zero timeout can never dispatch — not even at the arrival
        // tick, where the wait is exactly 0.
        let reg = registry_with(&[("g", 1)]);
        let mut zero = req(0, "g", 0, 0);
        zero.timeout_ns = Some(0);
        let report = Service::new(&reg, ServeConfig::default()).run(&[zero]);
        assert_eq!(report.completed, 0);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].reason, RejectReason::TimedOut);
        assert_eq!(report.rejections[0].at_ns, 0, "dropped at the arrival tick");
    }

    #[test]
    fn one_shot_fault_is_absorbed_by_a_retry() {
        use eta_fault::{EccFault, FaultPlan};
        let reg = registry_with(&[("g", 1)]);
        // One uncorrectable ECC hit early on device 0; it fires during the
        // first batch, the retry runs on a now-clean device and succeeds.
        let plan = FaultPlan {
            ecc: vec![EccFault {
                device: 0,
                at_ns: 50_000,
                addr_start: 0,
                addr_words: u64::MAX,
                double_bit: true,
            }],
            ..FaultPlan::default()
        };
        let cfg = ServeConfig {
            faults: plan,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.degraded, 0, "device answered after the retry");
        assert_eq!(report.fault_events.len(), 1);
        assert_eq!(report.fault_events[0].kind, "ecc_double_bit");
        assert!(report.quarantines.is_empty(), "one strike is not enough");
        let r = &report.records[0];
        assert_eq!(r.retries, 1);
        assert!(!r.degraded);
        let expect = reference::bfs(reg.get("g").unwrap(), 0);
        let reached = expect.iter().filter(|&&l| l != u32::MAX).count() as u32;
        assert_eq!(r.reached, reached, "retried answer is still correct");
        assert_eq!(report.availability, 1.0);
    }

    #[test]
    fn persistent_faults_quarantine_the_device_and_fall_back_to_cpu() {
        use eta_fault::{FaultPlan, HangFault};
        let reg = registry_with(&[("g", 1)]);
        // A permanent hang window with a tiny budget: every launch on
        // device 0 faults, so the ladder runs to its last rung.
        let plan = FaultPlan {
            hangs: vec![HangFault {
                device: 0,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 1_000,
            }],
            ..FaultPlan::default()
        };
        let cfg = ServeConfig {
            faults: plan,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&[req(0, "g", 0, 0)]);
        // Attempts at retries 0, 1, 2 all hang; the third strike both
        // quarantines the device and exhausts max_retries (2), so the CPU
        // reference answers.
        assert_eq!(report.completed, 1, "no request is lost to faults");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.degraded, 1);
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.fault_events.len(), 3);
        assert!(report
            .fault_events
            .iter()
            .all(|f| f.kind == "kernel_hang" && f.device == 0));
        assert_eq!(report.quarantines.len(), 1, "third strike quarantines");
        let q = &report.quarantines[0];
        assert_eq!(q.device, 0);
        assert!(q.until_ns > q.from_ns);
        let r = &report.records[0];
        assert!(r.degraded);
        assert_eq!(r.retries, 2);
        let expect = reference::bfs(reg.get("g").unwrap(), 0);
        let reached = expect.iter().filter(|&&l| l != u32::MAX).count() as u32;
        assert_eq!(r.reached, reached, "the CPU fallback answer is correct");
        assert!(r.latency_ns > 0);
        assert_eq!(report.makespan_ns, r.arrival_ns + r.latency_ns);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let reg = registry_with(&[("g", 1), ("h", 2)]);
        let plan = eta_fault::FaultPlan::seeded(7, 1, 40_000_000);
        assert!(!plan.is_empty());
        let trace: Vec<Request> = (0..8)
            .map(|i| req(i, if i % 2 == 0 { "g" } else { "h" }, i, (i as Ns) * 10_000))
            .collect();
        let cfg = ServeConfig {
            faults: plan,
            ..ServeConfig::default()
        };
        let a = Service::new(&reg, cfg.clone()).run(&trace);
        let b = Service::new(&reg, cfg).run(&trace);
        let json = |r: &ServeReport| serde_json::to_string(r).expect("report serializes");
        assert_eq!(json(&a), json(&b), "same plan, same trace, same bytes");
        assert_eq!(a.completed + a.rejected, 8, "every request is accounted");
    }

    #[test]
    fn checkpointed_ladder_resumes_and_beats_restart_from_scratch() {
        use eta_fault::{FaultPlan, HangFault};
        let reg = registry_with(&[("g", 1)]);
        let trace = vec![req(0, "g", 0, 0)];
        // Budget 50 µs: the small early-iteration kernels fit, the
        // peak-frontier propagate kernel does not — the watchdog kills the
        // traversal mid-run, after the interval-2 snapshot exists.
        let permanent = |end_ns| FaultPlan {
            hangs: vec![HangFault {
                device: 0,
                start_ns: 0,
                end_ns,
                budget_ns: 50_000,
            }],
            ..FaultPlan::default()
        };
        // Probe: a permanent window pins down the (deterministic) time of
        // the first mid-traversal kill under checkpointing.
        let probe = Service::new(
            &reg,
            ServeConfig {
                faults: permanent(Ns::MAX),
                checkpoint_interval: 2,
                ..ServeConfig::default()
            },
        )
        .run(&trace);
        assert_eq!(probe.completed, 1, "even a permanent hang loses nothing");
        let fail_at = probe.fault_events[0].at_ns;
        // Close the window just after that first kill: the re-probe on the
        // same device (rung 0, after one backoff) then runs clean.
        let ckpt = Service::new(
            &reg,
            ServeConfig {
                faults: permanent(fail_at + 1),
                checkpoint_interval: 2,
                ..ServeConfig::default()
            },
        )
        .run(&trace);
        assert_eq!(ckpt.completed, 1);
        assert_eq!(ckpt.degraded, 0, "the resume answered, not the CPU");
        assert_eq!(ckpt.resumes, 1, "one resume-from-checkpoint");
        assert_eq!(ckpt.migrations, 0, "same-device re-probe, no migration");
        assert!(ckpt.checkpoints >= 1);
        assert_eq!(
            ckpt.work_saved_iterations, 2,
            "the interval-2 snapshot restored iteration 2"
        );
        let r = &ckpt.records[0];
        assert_eq!(r.retries, 1);
        let expect = reference::bfs(reg.get("g").unwrap(), 0);
        assert_eq!(
            r.levels_digest,
            eta_ckpt::digest_words(&[&expect]),
            "resumed answer is bit-identical to the host reference"
        );
        // The same plan without checkpointing restarts from scratch; the
        // resume path must strictly beat it on the service clock.
        let scratch = Service::new(
            &reg,
            ServeConfig {
                faults: permanent(fail_at + 1),
                ..ServeConfig::default()
            },
        )
        .run(&trace);
        assert_eq!(scratch.completed, 1);
        assert_eq!(scratch.resumes, 0);
        assert!(
            ckpt.makespan_ns < scratch.makespan_ns,
            "resume ({} ns) must beat restart-from-scratch ({} ns)",
            ckpt.makespan_ns,
            scratch.makespan_ns
        );
    }

    #[test]
    fn resume_migrates_off_a_quarantined_device() {
        use eta_fault::{FaultPlan, HangFault};
        let reg = registry_with(&[("g", 1)]);
        // Device 0 hangs forever at the peak-frontier kernel and is
        // quarantined on its first strike; the parked batch must migrate
        // to healthy device 1 and finish from the snapshot.
        let plan = FaultPlan {
            hangs: vec![HangFault {
                device: 0,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 50_000,
            }],
            ..FaultPlan::default()
        };
        let cfg = ServeConfig {
            devices: 2,
            faults: plan,
            quarantine_after: 1,
            checkpoint_interval: 2,
            ..ServeConfig::default()
        };
        let report = Service::new(&reg, cfg).run(&[req(0, "g", 0, 0)]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.quarantines.len(), 1);
        assert_eq!(report.quarantines[0].device, 0);
        assert_eq!(report.resumes, 1);
        assert_eq!(report.migrations, 1, "resume landed on the other device");
        assert_eq!(report.work_saved_iterations, 2);
        let r = &report.records[0];
        assert_eq!(r.device, 1, "answered by the healthy device");
        let expect = reference::bfs(reg.get("g").unwrap(), 0);
        assert_eq!(r.levels_digest, eta_ckpt::digest_words(&[&expect]));
    }

    #[test]
    fn consecutive_fault_counter_resets_on_successful_reprobe() {
        use eta_fault::{FaultPlan, HangFault};
        let reg = registry_with(&[("g", 1)]);
        let trace = vec![req(0, "g", 0, 0)];
        // Probe the first kill time, then close the window just after it:
        // the retry runs clean on the same device.
        let permanent = |end_ns| FaultPlan {
            hangs: vec![HangFault {
                device: 0,
                start_ns: 0,
                end_ns,
                budget_ns: 50_000,
            }],
            ..FaultPlan::default()
        };
        let probe = Service::new(
            &reg,
            ServeConfig {
                faults: permanent(Ns::MAX),
                ..ServeConfig::default()
            },
        )
        .run(&trace);
        let fail_at = probe.fault_events[0].at_ns;
        let mut service = Service::new(
            &reg,
            ServeConfig {
                faults: permanent(fail_at + 1),
                ..ServeConfig::default()
            },
        );
        let report = service.run(&trace);
        assert_eq!(report.completed, 1);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.fault_events.len(), 1);
        let w = &service.workers()[0];
        assert_eq!(
            w.consecutive_faults, 0,
            "a successful re-probe must clear the quarantine strikes"
        );
        assert_eq!(w.faults, 1, "the lifetime fault count is kept");
        assert!(report.quarantines.is_empty());
    }

    #[test]
    fn mid_batch_quarantine_strands_no_riders() {
        use eta_fault::{FaultPlan, HangFault};
        let reg = registry_with(&[("g", 1)]);
        // A batch of 5 rides a device that hangs instantly and quarantines
        // on the first strike. Every rider must still be answered: the
        // ladder walks retry → quarantine wait → retry → CPU fallback.
        let plan = FaultPlan {
            hangs: vec![HangFault {
                device: 0,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 1_000,
            }],
            ..FaultPlan::default()
        };
        let cfg = ServeConfig {
            faults: plan,
            quarantine_after: 1,
            checkpoint_interval: 2,
            ..ServeConfig::default()
        };
        let trace: Vec<Request> = (0..5).map(|i| req(i, "g", i, 0)).collect();
        let report = Service::new(&reg, cfg).run(&trace);
        assert_eq!(
            report.completed + report.rejected,
            5,
            "a quarantine mid-batch may not strand its riders"
        );
        assert_eq!(report.completed, 5);
        assert_eq!(report.degraded, 5, "instant hangs push everyone to CPU");
        assert!(!report.quarantines.is_empty());
        for r in &report.records {
            let expect = reference::bfs(reg.get("g").unwrap(), r.source);
            assert_eq!(r.levels_digest, eta_ckpt::digest_words(&[&expect]));
        }
    }

    #[test]
    fn checkpointed_faulted_runs_are_deterministic() {
        let reg = registry_with(&[("g", 1), ("h", 2)]);
        let plan = eta_fault::FaultPlan::seeded(7, 1, 40_000_000);
        let trace: Vec<Request> = (0..8)
            .map(|i| req(i, if i % 2 == 0 { "g" } else { "h" }, i, (i as Ns) * 10_000))
            .collect();
        let cfg = ServeConfig {
            faults: plan,
            checkpoint_interval: 2,
            ..ServeConfig::default()
        };
        let a = Service::new(&reg, cfg.clone()).run(&trace);
        let b = Service::new(&reg, cfg).run(&trace);
        let json = |r: &ServeReport| serde_json::to_string(r).expect("report serializes");
        assert_eq!(json(&a), json(&b), "same plan, same trace, same bytes");
        assert_eq!(a.completed + a.rejected, 8, "every request is accounted");
    }

    #[test]
    fn two_devices_split_independent_graphs() {
        let reg = registry_with(&[("a", 1), ("b", 2)]);
        let trace = vec![req(0, "a", 0, 0), req(1, "b", 0, 0)];
        let cfg = ServeConfig {
            devices: 2,
            ..ServeConfig::default()
        };
        let mut service = Service::new(&reg, cfg);
        let report = service.run(&trace);
        assert_eq!(report.completed, 2);
        let used: Vec<u32> = report.batches.iter().map(|b| b.device).collect();
        assert!(used.contains(&0) && used.contains(&1), "both devices used");
        // Both launches start at t=0: the second was not serialized behind
        // the first.
        assert!(report.batches.iter().all(|b| b.dispatched_ns == 0));
    }
}
