//! Open-loop workload generation: a Poisson arrival process over named
//! graphs, driven entirely by counter-based SplitMix streams — no wall
//! clock, no stateful RNG, so a `(seed, requests)` pair always produces the
//! same trace.

use crate::registry::GraphRegistry;
use crate::request::{Priority, Request};
use eta_graph::generate::{splitmix, unit};
use eta_mem::Ns;

/// Shape of a generated request stream.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub requests: u32,
    pub seed: u64,
    /// Mean arrival rate of the Poisson process, requests per simulated
    /// second.
    pub rate_per_s: f64,
    /// Fraction of requests in the interactive class, in [0, 1].
    pub interactive_fraction: f64,
    /// Completion SLO attached to interactive requests (deadline =
    /// arrival + SLO); `None` = no deadline.
    pub interactive_slo_ns: Option<Ns>,
    /// Completion SLO attached to batch-class requests.
    pub batch_slo_ns: Option<Ns>,
    /// Queue-wait timeout attached to every request.
    pub timeout_ns: Option<Ns>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 200,
            seed: 7,
            rate_per_s: 2_000.0,
            interactive_fraction: 0.5,
            interactive_slo_ns: None,
            batch_slo_ns: None,
            timeout_ns: None,
        }
    }
}

/// Generates a Poisson-arrival trace of BFS requests over `graphs`.
///
/// Each request draws four independent SplitMix streams (inter-arrival gap,
/// graph pick, source pick, class pick), so changing one knob never
/// perturbs the other draws. Inter-arrival gaps are exponential via inverse
/// CDF (`-ln(1-u)/rate`). Sources are drawn uniformly over the picked
/// graph's vertices; a name missing from the registry keeps its raw draw
/// (the service will refuse it as `UnknownGraph`, which is itself useful
/// for rejection testing).
pub fn poisson_trace(
    registry: &GraphRegistry,
    graphs: &[String],
    cfg: &WorkloadConfig,
) -> Vec<Request> {
    assert!(!graphs.is_empty(), "need at least one graph name");
    assert!(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    let mut arrival = 0f64;
    let mut trace = Vec::with_capacity(cfg.requests as usize);
    for i in 0..cfg.requests as u64 {
        let gap_u = unit(cfg.seed, i * 4);
        arrival += -(1.0 - gap_u).ln() * 1e9 / cfg.rate_per_s;
        let graph = &graphs[(splitmix(cfg.seed, i * 4 + 1) % graphs.len() as u64) as usize];
        let source = match registry.get(graph) {
            Some(csr) => (splitmix(cfg.seed, i * 4 + 2) % csr.n().max(1) as u64) as u32,
            None => splitmix(cfg.seed, i * 4 + 2) as u32,
        };
        let class = if unit(cfg.seed, i * 4 + 3) < cfg.interactive_fraction {
            Priority::Interactive
        } else {
            Priority::Batch
        };
        let arrival_ns = arrival as Ns;
        let slo = match class {
            Priority::Interactive => cfg.interactive_slo_ns,
            Priority::Batch => cfg.batch_slo_ns,
        };
        trace.push(Request {
            id: i as u32,
            graph: graph.clone(),
            class,
            source,
            arrival_ns,
            deadline_ns: slo.map(|s| arrival_ns + s),
            timeout_ns: cfg.timeout_ns,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};

    fn registry() -> GraphRegistry {
        let mut reg = GraphRegistry::new();
        reg.insert("g", rmat(&RmatConfig::paper(8, 1_000, 1)));
        reg
    }

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let reg = registry();
        let names = vec!["g".to_string()];
        let cfg = WorkloadConfig {
            requests: 50,
            ..WorkloadConfig::default()
        };
        let a = poisson_trace(&reg, &names, &cfg);
        let b = poisson_trace(&reg, &names, &cfg);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.source, y.source);
            assert_eq!(x.class, y.class);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let n = reg.get("g").unwrap().n() as u32;
        assert!(a.iter().all(|r| r.source < n));
    }

    #[test]
    fn seeds_change_the_trace_and_slos_attach_by_class() {
        let reg = registry();
        let names = vec!["g".to_string()];
        let base = WorkloadConfig {
            requests: 40,
            interactive_slo_ns: Some(1_000_000),
            batch_slo_ns: None,
            ..WorkloadConfig::default()
        };
        let a = poisson_trace(&reg, &names, &base);
        let b = poisson_trace(
            &reg,
            &names,
            &WorkloadConfig {
                seed: 8,
                ..base.clone()
            },
        );
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.arrival_ns != y.arrival_ns || x.source != y.source),
            "different seeds must differ somewhere"
        );
        let mut interactive = 0;
        for r in &a {
            match r.class {
                Priority::Interactive => {
                    interactive += 1;
                    assert_eq!(r.deadline_ns, Some(r.arrival_ns + 1_000_000));
                }
                Priority::Batch => assert_eq!(r.deadline_ns, None),
            }
        }
        assert!(
            interactive > 0 && interactive < 40,
            "mixed classes expected, got {interactive}/40 interactive"
        );
    }
}
