//! Open-loop workload generation: a Poisson arrival process over named
//! graphs, driven entirely by counter-based SplitMix streams — no wall
//! clock, no stateful RNG, so a `(seed, requests)` pair always produces the
//! same trace.

use crate::registry::GraphRegistry;
use crate::request::{Priority, Request};
use eta_graph::generate::{splitmix, unit};
use eta_mem::Ns;

/// Arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Homogeneous Poisson: exponential gaps at `rate_per_s`.
    Poisson,
    /// Two-state Markov-modulated Poisson process (MMPP): a background
    /// *calm* state at half of `rate_per_s` and a *burst* state at four
    /// times it, with exponential sojourns drawn from a seeded stream
    /// independent of the per-request draws. Sojourn means are expressed
    /// in mean inter-arrival gaps at the base rate (16 calm, 4 burst), so
    /// the modulation tracks the workload's own timescale at any rate.
    /// Same mean intensity ballpark as `Poisson`, but the load arrives in
    /// squalls — the arrival pattern that defeats naive averaged
    /// admission control.
    Burst,
}

impl Arrival {
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Burst => "burst",
        }
    }

    /// Parses a CLI spelling; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "poisson" => Some(Arrival::Poisson),
            "burst" => Some(Arrival::Burst),
            _ => None,
        }
    }
}

/// Shape of a generated request stream.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub requests: u32,
    pub seed: u64,
    /// Mean arrival rate of the Poisson process, requests per simulated
    /// second.
    pub rate_per_s: f64,
    /// Arrival process: homogeneous Poisson (default) or two-state MMPP
    /// bursts.
    pub arrival: Arrival,
    /// Fraction of requests in the interactive class, in [0, 1].
    pub interactive_fraction: f64,
    /// Completion SLO attached to interactive requests (deadline =
    /// arrival + SLO); `None` = no deadline.
    pub interactive_slo_ns: Option<Ns>,
    /// Completion SLO attached to batch-class requests.
    pub batch_slo_ns: Option<Ns>,
    /// Queue-wait timeout attached to every request.
    pub timeout_ns: Option<Ns>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 200,
            seed: 7,
            rate_per_s: 2_000.0,
            arrival: Arrival::Poisson,
            interactive_fraction: 0.5,
            interactive_slo_ns: None,
            batch_slo_ns: None,
            timeout_ns: None,
        }
    }
}

/// Generates an open-loop arrival trace of BFS requests over `graphs` —
/// homogeneous Poisson by default, or two-state MMPP squalls with
/// [`Arrival::Burst`].
///
/// Each request draws four independent SplitMix streams (inter-arrival gap,
/// graph pick, source pick, class pick), so changing one knob never
/// perturbs the other draws. Inter-arrival gaps are exponential via inverse
/// CDF (`-ln(1-u)/rate`). Sources are drawn uniformly over the picked
/// graph's vertices; a name missing from the registry keeps its raw draw
/// (the service will refuse it as `UnknownGraph`, which is itself useful
/// for rejection testing).
pub fn poisson_trace(
    registry: &GraphRegistry,
    graphs: &[String],
    cfg: &WorkloadConfig,
) -> Vec<Request> {
    assert!(!graphs.is_empty(), "need at least one graph name");
    assert!(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    // MMPP modulation (Arrival::Burst): the state schedule is drawn from
    // its own counter namespace (`1<<40 + k`, far above any per-request
    // stream index), so switching arrival modes never perturbs the graph,
    // source, or class draws of a given request id.
    const CALM_MULT: f64 = 0.5;
    const BURST_MULT: f64 = 4.0;
    // Sojourn means in mean base-rate inter-arrival gaps: ~8 arrivals per
    // calm stretch (at 0.5x) and ~16 per squall (at 4x), at any rate.
    const CALM_SOJOURN_GAPS: f64 = 16.0;
    const BURST_SOJOURN_GAPS: f64 = 4.0;
    let gap_ns = 1e9 / cfg.rate_per_s;
    let mut bursting = false;
    let mut sojourns = 0u64;
    let mut state_until = {
        let u = unit(cfg.seed, 1 << 40);
        -(1.0 - u).ln() * CALM_SOJOURN_GAPS * gap_ns
    };
    let mut arrival = 0f64;
    let mut trace = Vec::with_capacity(cfg.requests as usize);
    for i in 0..cfg.requests as u64 {
        let gap_u = unit(cfg.seed, i * 4);
        let rate = match cfg.arrival {
            Arrival::Poisson => cfg.rate_per_s,
            Arrival::Burst => cfg.rate_per_s * if bursting { BURST_MULT } else { CALM_MULT },
        };
        arrival += -(1.0 - gap_u).ln() * 1e9 / rate;
        if cfg.arrival == Arrival::Burst {
            // Advance the modulating chain past this arrival. Exponential
            // gaps are memoryless, so drawing each gap at the rate of the
            // state active when the previous request arrived is a faithful
            // discretization of the MMPP.
            while arrival >= state_until {
                bursting = !bursting;
                sojourns += 1;
                let u = unit(cfg.seed, (1 << 40) + sojourns);
                let mean = if bursting {
                    BURST_SOJOURN_GAPS
                } else {
                    CALM_SOJOURN_GAPS
                };
                state_until += -(1.0 - u).ln() * mean * gap_ns;
            }
        }
        let graph = &graphs[(splitmix(cfg.seed, i * 4 + 1) % graphs.len() as u64) as usize];
        let source = match registry.get(graph) {
            Some(csr) => (splitmix(cfg.seed, i * 4 + 2) % csr.n().max(1) as u64) as u32,
            None => splitmix(cfg.seed, i * 4 + 2) as u32,
        };
        let class = if unit(cfg.seed, i * 4 + 3) < cfg.interactive_fraction {
            Priority::Interactive
        } else {
            Priority::Batch
        };
        let arrival_ns = arrival as Ns;
        let slo = match class {
            Priority::Interactive => cfg.interactive_slo_ns,
            Priority::Batch => cfg.batch_slo_ns,
        };
        trace.push(Request {
            id: i as u32,
            graph: graph.clone(),
            class,
            source,
            arrival_ns,
            deadline_ns: slo.map(|s| arrival_ns + s),
            timeout_ns: cfg.timeout_ns,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};

    fn registry() -> GraphRegistry {
        let mut reg = GraphRegistry::new();
        reg.insert("g", rmat(&RmatConfig::paper(8, 1_000, 1)));
        reg
    }

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let reg = registry();
        let names = vec!["g".to_string()];
        let cfg = WorkloadConfig {
            requests: 50,
            ..WorkloadConfig::default()
        };
        let a = poisson_trace(&reg, &names, &cfg);
        let b = poisson_trace(&reg, &names, &cfg);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.source, y.source);
            assert_eq!(x.class, y.class);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let n = reg.get("g").unwrap().n() as u32;
        assert!(a.iter().all(|r| r.source < n));
    }

    #[test]
    fn seeds_change_the_trace_and_slos_attach_by_class() {
        let reg = registry();
        let names = vec!["g".to_string()];
        let base = WorkloadConfig {
            requests: 40,
            interactive_slo_ns: Some(1_000_000),
            batch_slo_ns: None,
            ..WorkloadConfig::default()
        };
        let a = poisson_trace(&reg, &names, &base);
        let b = poisson_trace(
            &reg,
            &names,
            &WorkloadConfig {
                seed: 8,
                ..base.clone()
            },
        );
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.arrival_ns != y.arrival_ns || x.source != y.source),
            "different seeds must differ somewhere"
        );
        let mut interactive = 0;
        for r in &a {
            match r.class {
                Priority::Interactive => {
                    interactive += 1;
                    assert_eq!(r.deadline_ns, Some(r.arrival_ns + 1_000_000));
                }
                Priority::Batch => assert_eq!(r.deadline_ns, None),
            }
        }
        assert!(
            interactive > 0 && interactive < 40,
            "mixed classes expected, got {interactive}/40 interactive"
        );
    }

    #[test]
    fn burst_arrivals_are_deterministic_and_burstier_than_poisson() {
        let reg = registry();
        let names = vec!["g".to_string()];
        let cfg = WorkloadConfig {
            requests: 400,
            arrival: Arrival::Burst,
            ..WorkloadConfig::default()
        };
        let a = poisson_trace(&reg, &names, &cfg);
        let b = poisson_trace(&reg, &names, &cfg);
        assert_eq!(a.len(), 400);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.id, x.arrival_ns, x.source),
                (y.id, y.arrival_ns, y.source)
            );
        }
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        // Only the gaps change relative to Poisson: request i keeps its
        // graph, source, and class draws.
        let p = poisson_trace(
            &reg,
            &names,
            &WorkloadConfig {
                arrival: Arrival::Poisson,
                ..cfg.clone()
            },
        );
        for (x, y) in a.iter().zip(&p) {
            assert_eq!((x.source, x.class), (y.source, y.class));
        }
        assert!(
            a.iter().zip(&p).any(|(x, y)| x.arrival_ns != y.arrival_ns),
            "modulation must actually move arrivals"
        );
        // Burstiness: the squared coefficient of variation of inter-arrival
        // gaps exceeds the exponential's (which is 1). Use a generous
        // threshold so the test pins the property, not the sample noise.
        let cv2 = |t: &[Request]| {
            let gaps: Vec<f64> = t
                .windows(2)
                .map(|w| (w[1].arrival_ns - w[0].arrival_ns) as f64)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        assert!(
            cv2(&a) > cv2(&p) * 1.2,
            "MMPP gaps must be overdispersed: burst cv2 {} vs poisson cv2 {}",
            cv2(&a),
            cv2(&p)
        );
    }
}
