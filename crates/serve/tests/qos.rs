//! Integration tests for the overload-control (qos) layer: exactly-once
//! request disposition under saturation, byte-determinism, and the behavior
//! of each control — admission, shedding, fair share, the retry budget, and
//! brownout — observed through the public `Service` API.

use eta_fault::{FaultPlan, HangFault};
use eta_graph::generate::{rmat, RmatConfig};
use eta_mem::Ns;
use eta_serve::{
    poisson_trace, Arrival, GraphRegistry, Priority, QosConfig, RejectReason, Request, ServeConfig,
    ServeReport, Service, WorkloadConfig,
};
use std::collections::BTreeSet;

fn registry_with(names: &[(&str, u64)]) -> GraphRegistry {
    let mut reg = GraphRegistry::new();
    for &(name, seed) in names {
        reg.insert(name, rmat(&RmatConfig::paper(10, 8_000, seed)));
    }
    reg
}

fn req(id: u32, graph: &str, class: Priority, source: u32, arrival_ns: Ns) -> Request {
    Request {
        id,
        graph: graph.to_string(),
        class,
        source,
        arrival_ns,
        deadline_ns: None,
        timeout_ns: None,
    }
}

/// Every id in the trace must appear exactly once across completions and
/// rejections — no request lost, none double-counted.
fn assert_exactly_once(trace: &[Request], report: &ServeReport, label: &str) {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for r in &report.records {
        assert!(seen.insert(r.id), "{label}: id {} double-completed", r.id);
    }
    for r in &report.rejections {
        assert!(
            seen.insert(r.id),
            "{label}: id {} both completed and rejected",
            r.id
        );
    }
    let expected: BTreeSet<u32> = trace.iter().map(|r| r.id).collect();
    assert_eq!(seen, expected, "{label}: disposition must cover the trace");
    assert_eq!(
        report.completed as usize + report.rejections.len(),
        trace.len(),
        "{label}: counts must add up"
    );
}

/// Property-style sweep: rate multipliers x arrival shapes x fault plans,
/// all with the full qos profile on a small queue. Every cell must dispose
/// of every request exactly once, and a second run must serialize to the
/// same bytes.
#[test]
fn exactly_once_disposition_under_saturation_grid() {
    let reg = registry_with(&[("tenant-a", 1), ("tenant-b", 2)]);
    let names = vec!["tenant-a".to_string(), "tenant-b".to_string()];
    for &rate in &[20_000.0f64, 80_000.0, 160_000.0] {
        for &arrival in &[Arrival::Poisson, Arrival::Burst] {
            for plan_seed in [None, Some(131u64)] {
                let workload = WorkloadConfig {
                    requests: 80,
                    seed: 7,
                    rate_per_s: rate,
                    arrival,
                    interactive_fraction: 0.5,
                    interactive_slo_ns: Some(1_000_000),
                    batch_slo_ns: None,
                    timeout_ns: None,
                };
                let trace = poisson_trace(&reg, &names, &workload);
                let cfg = ServeConfig {
                    devices: 2,
                    queue_capacity: 16,
                    checkpoint_interval: 2,
                    faults: plan_seed
                        .map(|s| FaultPlan::seeded(s, 2, 10_000_000))
                        .unwrap_or_default(),
                    qos: QosConfig::standard(),
                    ..ServeConfig::default()
                };
                let label = format!("rate={rate} arrival={} plan={plan_seed:?}", arrival.name());
                let a = Service::new(&reg, cfg.clone()).run(&trace);
                assert_exactly_once(&trace, &a, &label);
                let b = Service::new(&reg, cfg).run(&trace);
                let json = |r: &ServeReport| serde_json::to_string(r).expect("serializes");
                assert_eq!(json(&a), json(&b), "{label}: reruns must be byte-identical");
            }
        }
    }
}

/// With every qos feature off (the default), the report carries no qos
/// section at all — the layer is invisible.
#[test]
fn qos_off_reports_no_qos_section() {
    let reg = registry_with(&[("g", 1)]);
    let report =
        Service::new(&reg, ServeConfig::default()).run(&[req(0, "g", Priority::Batch, 0, 0)]);
    assert!(report.qos.is_none());
    assert_eq!(report.completed, 1);
}

/// Admission control refuses a request whose deadline is already
/// unmeetable at arrival; with admission off the same request is served
/// (late).
#[test]
fn admission_rejects_infeasible_deadlines_at_arrival() {
    let reg = registry_with(&[("g", 1)]);
    let mut r = req(0, "g", Priority::Interactive, 0, 0);
    r.deadline_ns = Some(1); // one nanosecond after arrival: hopeless
    let trace = vec![r];

    let qos_on = ServeConfig {
        qos: QosConfig {
            admission: true,
            ..QosConfig::default()
        },
        ..ServeConfig::default()
    };
    let report = Service::new(&reg, qos_on).run(&trace);
    assert_eq!(report.completed, 0);
    assert_eq!(report.rejections.len(), 1);
    assert_eq!(
        report.rejections[0].reason,
        RejectReason::DeadlineInfeasible
    );
    assert_eq!(report.qos.as_ref().unwrap().admission_rejections, 1);

    let report = Service::new(&reg, ServeConfig::default()).run(&trace);
    assert_eq!(report.completed, 1, "without admission the request runs");
    assert_eq!(report.records[0].deadline_met, Some(false));
}

/// At queue capacity, shedding drops the worst queued entry (best-effort
/// batch traffic) to make room for a deadline-bearing interactive
/// newcomer — instead of bouncing the newcomer as `queue_full`.
#[test]
fn shed_evicts_worst_entry_not_the_newcomer() {
    let reg = registry_with(&[("g", 1)]);
    // Serial service (1 device, no batching) so the queue actually fills:
    // a wave of batch-class requests, then interactive stragglers.
    let mut trace: Vec<Request> = (0..10)
        .map(|i| req(i, "g", Priority::Batch, i, i as Ns))
        .collect();
    for i in 10..14u32 {
        let mut r = req(i, "g", Priority::Interactive, i, 100 + i as Ns);
        r.deadline_ns = Some(100 + i as Ns + 50_000_000);
        trace.push(r);
    }
    let cfg = ServeConfig {
        queue_capacity: 4,
        max_batch: 1,
        qos: QosConfig {
            shed: true,
            ..QosConfig::default()
        },
        ..ServeConfig::default()
    };
    let report = Service::new(&reg, cfg).run(&trace);
    let shed: Vec<u32> = report
        .rejections
        .iter()
        .filter(|r| r.reason == RejectReason::ShedOverload)
        .map(|r| r.id)
        .collect();
    assert!(!shed.is_empty(), "overload must shed something");
    assert!(
        shed.iter().all(|&id| id < 10),
        "only best-effort batch entries are shed, got {shed:?}"
    );
    for i in 10..14 {
        assert!(
            report.records.iter().any(|r| r.id == i),
            "interactive request {i} must complete"
        );
    }
    assert_eq!(
        report.qos.as_ref().unwrap().shed_rejections,
        shed.len() as u32
    );
}

/// Under congestion, per-tenant fair share throttles the flooding tenant
/// and the light tenant's requests all complete.
#[test]
fn fair_share_throttles_the_flooding_tenant() {
    let reg = registry_with(&[("flood", 1), ("light", 2)]);
    let mut trace: Vec<Request> = (0..60)
        .map(|i| req(i, "flood", Priority::Batch, i, i as Ns))
        .collect();
    for i in 60..66u32 {
        trace.push(req(i, "light", Priority::Batch, i, (i as Ns) * 200_000));
    }
    trace.sort_by_key(|r| (r.arrival_ns, r.id));
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        qos: QosConfig {
            fair_share: true,
            tenant_rate_ns_per_s: 200_000_000,
            tenant_burst_ns: 2_000_000,
            fair_share_min_queue: 4,
            ..QosConfig::default()
        },
        ..ServeConfig::default()
    };
    let report = Service::new(&reg, cfg).run(&trace);
    let throttled: Vec<u32> = report
        .rejections
        .iter()
        .filter(|r| r.reason == RejectReason::TenantThrottled)
        .map(|r| r.id)
        .collect();
    assert!(!throttled.is_empty(), "the flood must hit its fair share");
    assert!(
        throttled.iter().all(|&id| id < 60),
        "only the flooding tenant is throttled, got {throttled:?}"
    );
    for i in 60..66 {
        assert!(
            report.records.iter().any(|r| r.id == i),
            "light-tenant request {i} must complete"
        );
    }
    assert_eq!(
        report.qos.as_ref().unwrap().throttle_rejections,
        throttled.len() as u32
    );
}

/// The retry-amplification regression: on a permanently hanging device, an
/// exhausted retry budget sends requests straight to the CPU fallback
/// instead of burning device time on doomed retries — every answer still
/// arrives, and the budgeted run finishes no later than the unbudgeted one.
#[test]
fn retry_budget_caps_amplification_on_a_hanging_device() {
    let reg = registry_with(&[("g", 1)]);
    let plan = FaultPlan {
        hangs: vec![HangFault {
            device: 0,
            start_ns: 0,
            end_ns: Ns::MAX,
            budget_ns: 1_000,
        }],
        ..FaultPlan::default()
    };
    let trace: Vec<Request> = (0..8)
        .map(|i| req(i, "g", Priority::Batch, i, (i as Ns) * 10_000))
        .collect();
    let unbudgeted = ServeConfig {
        faults: plan.clone(),
        ..ServeConfig::default()
    };
    let budgeted = ServeConfig {
        faults: plan,
        qos: QosConfig {
            retry_budget: true,
            retry_rate_per_s: 0,
            retry_burst: 1,
            ..QosConfig::default()
        },
        ..ServeConfig::default()
    };
    let base = Service::new(&reg, unbudgeted).run(&trace);
    let capped = Service::new(&reg, budgeted).run(&trace);
    for r in [&base, &capped] {
        assert_eq!(r.completed, 8, "no request is lost either way");
        assert_eq!(r.rejected, 0);
        assert_eq!(r.degraded, 8, "every answer comes from the CPU fallback");
    }
    let stats = capped.qos.as_ref().unwrap();
    assert_eq!(stats.retries_granted, 1, "one token in the bucket");
    assert!(stats.retries_denied > 0, "the rest are denied");
    assert!(
        capped.fault_events.len() < base.fault_events.len(),
        "denied retries stop re-probing the hanging device ({} vs {})",
        capped.fault_events.len(),
        base.fault_events.len()
    );
    assert!(
        capped.makespan_ns <= base.makespan_ns,
        "the budget must not slow completion: {} vs {} ns",
        capped.makespan_ns,
        base.makespan_ns
    );
}

/// Sustained queue delay enters brownout (best-effort riders demoted and
/// run degraded via zero-copy); draining the queue exits it again.
#[test]
fn brownout_degrades_best_effort_and_recovers() {
    let reg = registry_with(&[("g", 1)]);
    // A dense wave of best-effort requests with a few interactive riders,
    // then a long-quiet tail so the wait EWMA decays back under the exit
    // threshold while brownout is still observable mid-run.
    let mut trace: Vec<Request> = (0..40)
        .map(|i| {
            let class = if i % 4 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let mut r = req(i, "g", class, i, (i as Ns) * 1_000);
            if class == Priority::Interactive {
                r.deadline_ns = Some(r.arrival_ns + 100_000_000);
            }
            r
        })
        .collect();
    // The EWMA decays by 7/8 per near-zero-wait sample, so give the tail
    // enough spaced dispatches to fall from the wave's multi-ms wait down
    // under the exit threshold.
    for i in 40..100u32 {
        trace.push(req(i, "g", Priority::Batch, i, (i as Ns) * 2_000_000));
    }
    let cfg = ServeConfig {
        max_batch: 4,
        qos: QosConfig {
            brownout: true,
            brownout_enter_ns: 50_000,
            brownout_exit_ns: 10_000,
            ..QosConfig::default()
        },
        ..ServeConfig::default()
    };
    let report = Service::new(&reg, cfg).run(&trace);
    assert_exactly_once(&trace, &report, "brownout");
    let stats = report.qos.as_ref().unwrap();
    assert!(stats.brownout_entries > 0, "the wave must enter brownout");
    assert!(
        stats.brownout_batches > 0 && stats.brownout_downgrades > 0,
        "brownout must actually degrade best-effort batches: {stats:?}"
    );
    assert!(
        stats.brownout_exits > 0,
        "the quiet tail must exit brownout: {stats:?}"
    );
}
