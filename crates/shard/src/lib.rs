//! `eta-shard` — vertex-range CSR partitioning for multi-device traversal.
//!
//! A [`GraphPartition`] splits a global CSR into one shard per device by
//! contiguous vertex range, chosen so every shard carries roughly the same
//! number of *edges* (vertex counts are a poor proxy on power-law graphs —
//! one hub can outweigh thousands of leaves). Each shard owns the vertices
//! of its range together with **all** of their out-edges, so the owner of a
//! vertex is the only device that ever expands it — Gunrock's partitioned
//! frontier model (PAPERS.md).
//!
//! Edges whose destination falls outside the owned range point at *halo*
//! vertices: remote vertices that appear in the shard's local CSR as
//! zero-out-degree rows appended after the owned range. The shard relaxes
//! into its local halo copies exactly like into owned vertices; the BSP
//! exchange (etagraph's `sharded` module) then ships the improved halo
//! labels to their owners over the modeled peer links. Keeping a replicated
//! label/tag slot per halo vertex is what makes the local kernels oblivious
//! to sharding — and is precisely the extra device memory the serving
//! layer's admission check must account for.
//!
//! Local vertex ids are `0..own_len` for owned vertices (global `lo + i`)
//! followed by halo vertices in ascending global order — a bijection both
//! sides of the exchange can compute without any per-vertex table.

use eta_graph::Csr;

/// One device's shard: the owned global range, the local CSR (owned rows
/// first, then zero-degree halo rows), and the halo's global ids.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Position in the group (0-based device slot).
    pub device: u32,
    /// First owned global vertex (inclusive).
    pub lo: u32,
    /// One past the last owned global vertex.
    pub hi: u32,
    /// Local topology: rows `0..own_len()` are the owned vertices with all
    /// their out-edges (targets remapped to local ids); rows `own_len()..`
    /// are the halo vertices with out-degree 0.
    pub csr: Csr,
    /// Global ids of the halo vertices, ascending (row `own_len() + i` of
    /// the local CSR is global vertex `halo[i]`).
    pub halo: Vec<u32>,
}

impl ShardSpec {
    /// Owned vertices in this shard.
    pub fn own_len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Local vertex count: owned plus halo.
    pub fn local_n(&self) -> u32 {
        // lint: allow(L-CAST-TRUNC): CSR vertex ids are u32, so n() fits
        self.csr.n() as u32
    }

    /// Local edge count (every edge of every owned vertex).
    pub fn local_m(&self) -> u64 {
        self.csr.m() as u64
    }

    /// Maps a global vertex to its local id, if present in this shard.
    pub fn to_local(&self, global: u32) -> Option<u32> {
        if (self.lo..self.hi).contains(&global) {
            return Some(global - self.lo);
        }
        self.halo
            .binary_search(&global)
            .ok()
            .map(|i| self.own_len() + i as u32)
    }

    /// Maps a local id back to its global vertex.
    pub fn to_global(&self, local: u32) -> u32 {
        if local < self.own_len() {
            self.lo + local
        } else {
            self.halo[(local - self.own_len()) as usize]
        }
    }

    /// Whether a *local* id is a halo copy (vs an owned vertex).
    pub fn is_halo_local(&self, local: u32) -> bool {
        local >= self.own_len()
    }

    /// Content digest of the local topology (per-shard checkpoint /
    /// residency guard, same construction as [`Csr::digest`]).
    pub fn digest(&self) -> u64 {
        self.csr.digest()
    }

    /// Exact explicit device bytes a single-source traversal on this shard
    /// allocates (mirrors `etagraph::engine::prepare` with in-core UDC):
    /// topology when the transfer mode copies it up front, labels + tags
    /// sized `local_n` — the replicated halo buffers included — two frontier
    /// queues, and the two virtual active sets. Pinned exact by a test
    /// against the allocator's accounting (`tests/properties.rs`).
    pub fn footprint_bytes(&self, k: u32, explicit_topology: bool) -> u64 {
        let n = self.local_n() as u64;
        let m = self.local_m();
        let topo = if explicit_topology {
            let w = if self.csr.is_weighted() { m.max(1) } else { 0 };
            (n + 1) + m.max(1) + w
        } else {
            0
        };
        let labels_tags = 2 * n;
        let queue = |cap: u64| cap.max(1) + 1; // DeviceQueue: items + count
        let vqueue = |cap: u64| 3 * cap.max(1) + 1; // VirtualQueue: 3 arrays + count
        let full_cap = (m / k as u64).max(1) + 1;
        let words = topo + labels_tags + 2 * queue(n) + vqueue(full_cap) + vqueue(n);
        words * 4
    }
}

/// A complete vertex-range partition of one global graph.
#[derive(Debug, Clone)]
pub struct GraphPartition {
    /// Global vertex count.
    pub n: u32,
    /// Global edge count.
    pub m: u64,
    /// Range boundaries: shard `d` owns `cuts[d]..cuts[d+1]`
    /// (`cuts.len() == shards.len() + 1`, `cuts[0] == 0`, last is `n`).
    pub cuts: Vec<u32>,
    pub shards: Vec<ShardSpec>,
}

impl GraphPartition {
    /// Partitions `csr` into `devices` contiguous vertex ranges balanced by
    /// edge count. Deterministic; shards may own an empty range when the
    /// graph has fewer populated rows than devices.
    pub fn vertex_range(csr: &Csr, devices: u32) -> GraphPartition {
        assert!(devices >= 1, "need at least one shard");
        // lint: allow(L-CAST-TRUNC): CSR vertex ids are u32, so n() fits
        let n = csr.n() as u32;
        let m = csr.m() as u64;
        let mut cuts = Vec::with_capacity(devices as usize + 1);
        cuts.push(0u32);
        for d in 1..devices {
            // Smallest v with prefix_edges(v) >= d/devices of all edges;
            // row_offsets is the prefix-edge array, so this is one
            // partition-point scan. Monotone in d, so cuts are sorted.
            let target = m * d as u64 / devices as u64;
            let v = csr
                .row_offsets
                .partition_point(|&off| (off as u64) < target) as u32;
            // lint: allow(L-PANIC): cuts starts with a pushed 0, so last() exists
            cuts.push(v.clamp(*cuts.last().expect("non-empty"), n));
        }
        cuts.push(n);
        let shards = (0..devices as usize)
            .map(|d| build_shard(csr, d as u32, cuts[d], cuts[d + 1]))
            .collect();
        GraphPartition { n, m, cuts, shards }
    }

    /// The device slot owning global vertex `v`.
    pub fn owner(&self, v: u32) -> u32 {
        debug_assert!(v < self.n);
        // First cut strictly greater than v, minus one: ranges are
        // contiguous and cover 0..n.
        (self.cuts.partition_point(|&c| c <= v) - 1) as u32
    }

    pub fn devices(&self) -> u32 {
        // lint: allow(L-CAST-TRUNC): shard count is the devices argument, a u32
        self.shards.len() as u32
    }

    /// Total halo slots over all shards — the replication the partition
    /// introduces (and the admission headroom it requires).
    pub fn halo_total(&self) -> u64 {
        self.shards.iter().map(|s| s.halo.len() as u64).sum()
    }

    /// Assembles global per-vertex values from per-shard *owned* slices
    /// (shard `d` contributes `owned[d][0..own_len]`), in range order.
    pub fn merge_owned(&self, owned: &[Vec<u32>]) -> Vec<u32> {
        assert_eq!(owned.len(), self.shards.len());
        let mut out = Vec::with_capacity(self.n as usize);
        for (s, vals) in self.shards.iter().zip(owned) {
            assert!(vals.len() >= s.own_len() as usize);
            out.extend_from_slice(&vals[..s.own_len() as usize]);
        }
        out
    }
}

fn build_shard(csr: &Csr, device: u32, lo: u32, hi: u32) -> ShardSpec {
    let own = (hi - lo) as usize;
    let e_lo = csr.row_offsets[lo as usize] as usize;
    let e_hi = csr.row_offsets[hi as usize] as usize;

    // Halo: every distinct out-of-range destination of an owned edge.
    let mut halo: Vec<u32> = csr.col_idx[e_lo..e_hi]
        .iter()
        .copied()
        .filter(|&dst| !(lo..hi).contains(&dst))
        .collect();
    halo.sort_unstable();
    halo.dedup();

    let local_n = own + halo.len();
    let mut row_offsets = Vec::with_capacity(local_n + 1);
    let mut col_idx = Vec::with_capacity(e_hi - e_lo);
    row_offsets.push(0u32);
    for v in lo..hi {
        let (s, e) = (
            csr.row_offsets[v as usize] as usize,
            csr.row_offsets[v as usize + 1] as usize,
        );
        for &dst in &csr.col_idx[s..e] {
            let local = if (lo..hi).contains(&dst) {
                dst - lo
            } else {
                // lint: allow(L-PANIC): halo was built from exactly these cross-shard destinations
                own as u32 + halo.binary_search(&dst).expect("collected above") as u32
            };
            col_idx.push(local);
        }
        // lint: allow(L-CAST-TRUNC): per-shard edge counts fit the u32 CSR offset space
        row_offsets.push(col_idx.len() as u32);
    }
    // Halo rows: zero out-degree ("it naturally filters active vertices
    // with outdegree equals to 0" — the UDC kernel skips them for free).
    for _ in 0..halo.len() {
        // lint: allow(L-CAST-TRUNC): per-shard edge counts fit the u32 CSR offset space
        row_offsets.push(col_idx.len() as u32);
    }
    let weights = csr.weights.as_ref().map(|w| w[e_lo..e_hi].to_vec());
    let local = Csr {
        row_offsets,
        col_idx,
        weights,
    };
    debug_assert!(local.validate().is_ok(), "local shard CSR is well-formed");
    ShardSpec {
        device,
        lo,
        hi,
        csr: local,
        halo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0→{1,2,3}, 1→3, 2→3, 3→0 (a cycle through a diamond).
        Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn ranges_tile_the_vertex_space() {
        let g = diamond();
        for devices in 1..=6u32 {
            let p = GraphPartition::vertex_range(&g, devices);
            assert_eq!(p.shards.len(), devices as usize);
            assert_eq!(p.cuts[0], 0);
            assert_eq!(*p.cuts.last().unwrap(), g.n() as u32);
            assert!(p.cuts.windows(2).all(|w| w[0] <= w[1]));
            let owned: u32 = p.shards.iter().map(|s| s.own_len()).sum();
            assert_eq!(owned, g.n() as u32);
            let edges: u64 = p.shards.iter().map(|s| s.local_m()).sum();
            assert_eq!(edges, g.m() as u64, "every edge lands in one shard");
            for v in 0..g.n() as u32 {
                let d = p.owner(v);
                assert!((p.shards[d as usize].lo..p.shards[d as usize].hi).contains(&v));
            }
        }
    }

    #[test]
    fn halo_is_exactly_the_cross_range_destinations() {
        let g = diamond();
        let p = GraphPartition::vertex_range(&g, 2);
        for s in &p.shards {
            let mut expect: Vec<u32> = (s.lo..s.hi)
                .flat_map(|v| g.neighbors(v).iter().copied())
                .filter(|&d| !(s.lo..s.hi).contains(&d))
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(s.halo, expect, "shard {}", s.device);
            // Halo rows have out-degree 0.
            for h in 0..s.halo.len() as u32 {
                assert_eq!(s.csr.degree(s.own_len() + h), 0);
            }
        }
    }

    #[test]
    fn local_global_maps_are_inverse() {
        let g = diamond();
        let p = GraphPartition::vertex_range(&g, 3);
        for s in &p.shards {
            for l in 0..s.local_n() {
                assert_eq!(s.to_local(s.to_global(l)), Some(l));
            }
            // A vertex on no local row maps to nothing.
            for v in 0..g.n() as u32 {
                if !(s.lo..s.hi).contains(&v) && s.halo.binary_search(&v).is_err() {
                    assert_eq!(s.to_local(v), None);
                }
            }
        }
    }

    #[test]
    fn local_edges_mirror_global_edges() {
        let g = diamond();
        let p = GraphPartition::vertex_range(&g, 2);
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for s in &p.shards {
            for v in 0..s.own_len() {
                for &dst in s.csr.neighbors(v) {
                    seen.push((s.to_global(v), s.to_global(dst)));
                }
            }
        }
        seen.sort_unstable();
        let mut expect = g.edge_tuples();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn weighted_partitions_keep_per_edge_weights() {
        let g = diamond().with_random_weights(7, 16);
        let p = GraphPartition::vertex_range(&g, 2);
        for s in &p.shards {
            assert!(s.csr.is_weighted());
            for v in 0..s.own_len() {
                let global = s.to_global(v);
                assert_eq!(s.csr.edge_weights(v), g.edge_weights(global));
            }
        }
    }

    #[test]
    fn more_devices_than_vertices_yields_empty_tail_shards() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let p = GraphPartition::vertex_range(&g, 4);
        assert_eq!(p.shards.len(), 4);
        let owned: u32 = p.shards.iter().map(|s| s.own_len()).sum();
        assert_eq!(owned, 2);
        assert!(p.shards.iter().any(|s| s.own_len() == 0));
        // Empty shards are inert: no edges, no halo.
        for s in p.shards.iter().filter(|s| s.own_len() == 0) {
            assert_eq!(s.local_m(), 0);
            assert!(s.halo.is_empty());
        }
    }

    #[test]
    fn edge_balance_beats_naive_vertex_split_on_skew() {
        // One hub with 60 edges then 60 leaves with one edge each: a naive
        // n/2 vertex split puts ~everything on shard 0; the edge-balanced
        // cut moves the leaf rows over.
        let mut edges: Vec<(u32, u32)> = (1..=60).map(|i| (0, i)).collect();
        edges.extend((1..61).map(|i| (i, 0)));
        let g = Csr::from_edges(61, &edges);
        let p = GraphPartition::vertex_range(&g, 2);
        let (a, b) = (p.shards[0].local_m(), p.shards[1].local_m());
        let skew = a.max(b) as f64 / (a + b) as f64;
        assert!(skew < 0.7, "edge split {a}/{b} too skewed");
    }
}
