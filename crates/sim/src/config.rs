//! GPU configuration and presets.
//!
//! The preset models the paper's testbed — an NVIDIA GTX 1080Ti (28 SMs,
//! 48 KiB L1/unified cache per SM, 2.75 MiB L2, GDDR5X at ~484 GB/s, PCIe
//! 3.0 x16 at ~12 GB/s) — with one deliberate deviation: device memory
//! capacity is **scaled down** in the same proportion as the datasets
//! (DESIGN.md), so that the O.O.M boundaries of Table III fall between the
//! same dataset pairs as in the paper.

use crate::sanitizer::SanitizerMode;
use eta_mem::cache::CacheConfig;

/// Number of lanes in a warp. Fixed at compile time for the simulator.
pub const WARP_SIZE: usize = 32;

/// Full configuration of the simulated GPU.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Hardware limit of resident warps per SM.
    pub max_resident_warps: usize,
    /// Core clock in GHz (cycles per ns).
    pub clock_ghz: f64,
    /// Per-SM L1/unified cache.
    pub l1: CacheConfig,
    /// Device-wide L2 cache.
    pub l2: CacheConfig,
    /// Programmer-managed shared memory per SM, bytes.
    pub shared_mem_per_sm: u64,
    /// DRAM bandwidth, GB/s.
    pub dram_bandwidth_gb_s: f64,
    /// Latency of an access serviced by DRAM, cycles.
    pub dram_latency: u64,
    /// Latency of an access serviced by L2, cycles.
    pub l2_latency: u64,
    /// Latency of an access serviced by L1, cycles.
    pub l1_latency: u64,
    /// Latency of a shared-memory access, cycles.
    pub shared_latency: u64,
    /// Issue cost of a pipelined (burst) memory operation, cycles.
    pub burst_issue: u64,
    /// Serialization cost per lane of an atomic, cycles.
    pub atomic_serialize: u64,
    /// Latency of a zero-copy (host-mapped) access, cycles.
    pub zero_copy_latency: u64,
    /// Device memory capacity, bytes (scaled with the datasets).
    pub device_mem_bytes: u64,
    /// Host↔device interconnect bandwidth, GB/s.
    pub pcie_bandwidth_gb_s: f64,
    /// Per-transfer interconnect setup latency, ns.
    pub pcie_latency_ns: u64,
    /// Cap on the memory-latency-hiding factor from warp switching.
    pub hiding_cap: usize,
    /// Which sanitizer analyses instrument kernel accesses (default off).
    pub sanitizer: SanitizerMode,
    /// Whether the device records an `eta-prof` event stream (default off;
    /// disabled profiling is zero-cost).
    pub profiling: bool,
    /// Host threads used to replay the per-SM stages of a launch (default
    /// 1). This is a host-speed knob only: every simulated result —
    /// counters, timings, sanitizer findings, profiler spans — is
    /// byte-identical across thread counts (see DESIGN.md "Host
    /// parallelism").
    pub host_threads: usize,
}

/// A degenerate [`GpuConfig`] field, rejected at device construction.
///
/// Before PR 9 these reached `block % num_sms` / `div_ceil(num_sms)` deep
/// inside `Device::launch` and died with a raw divide-by-zero; now
/// [`GpuConfig::validate`] names the field up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_sms == 0`: no SM to schedule blocks onto.
    ZeroSms,
    /// `max_resident_warps == 0`: no warp could ever be resident.
    ZeroResidentWarps,
    /// `hiding_cap == 0`: the latency-hiding divisor would be meaningless.
    ZeroHidingCap,
    /// `host_threads == 0`: a launch needs at least the calling thread.
    ZeroHostThreads,
    /// `clock_ghz` is zero, negative, or non-finite.
    BadClock,
    /// `dram_bandwidth_gb_s` is zero, negative, or non-finite.
    BadDramBandwidth,
    /// `l1.ways == 0`: a set-associative cache needs at least one way.
    ZeroL1Ways,
    /// `l1.line_bytes == 0`: sector math divides by the line size.
    ZeroL1Line,
    /// `l2.ways == 0`.
    ZeroL2Ways,
    /// `l2.line_bytes == 0`.
    ZeroL2Line,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::ZeroSms => "num_sms must be at least 1",
            ConfigError::ZeroResidentWarps => "max_resident_warps must be at least 1",
            ConfigError::ZeroHidingCap => "hiding_cap must be at least 1",
            ConfigError::ZeroHostThreads => "host_threads must be at least 1",
            ConfigError::BadClock => "clock_ghz must be finite and positive",
            ConfigError::BadDramBandwidth => "dram_bandwidth_gb_s must be finite and positive",
            ConfigError::ZeroL1Ways => "l1.ways must be at least 1",
            ConfigError::ZeroL1Line => "l1.line_bytes must be at least 1",
            ConfigError::ZeroL2Ways => "l2.ways must be at least 1",
            ConfigError::ZeroL2Line => "l2.line_bytes must be at least 1",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

impl GpuConfig {
    /// GTX 1080Ti-like preset with device memory scaled to the datasets.
    ///
    /// `device_mem_bytes` is the one knob experiments vary (the paper's GPU
    /// has 11 GiB; the scaled evaluation uses [`Self::DEFAULT_DEVICE_MEM`]).
    pub fn gtx1080ti_scaled(device_mem_bytes: u64) -> Self {
        let l1 = CacheConfig {
            size_bytes: 48 * 1024,
            line_bytes: 32,
            ways: 8,
            // Under interleaved traffic a line survives about half a cache
            // turnover: set conflicts evict before full capacity reuse
            // (see eta-mem::cache for the aging model).
            retention: (48 * 1024) / 32 / 2,
        };
        let l2 = CacheConfig {
            size_bytes: 2816 * 1024, // 2.75 MiB, as the paper cites
            line_bytes: 32,
            ways: 16,
            // Same half-turnover rule as L1, in global-insertion ticks.
            retention: (2816 * 1024) / 32 / 2,
        };
        GpuConfig {
            num_sms: 28,
            max_resident_warps: 64,
            clock_ghz: 1.48,
            l1,
            l2,
            shared_mem_per_sm: 96 * 1024,
            dram_bandwidth_gb_s: 484.0,
            dram_latency: 400,
            l2_latency: 220,
            l1_latency: 32,
            shared_latency: 24,
            burst_issue: 4,
            atomic_serialize: 2,
            zero_copy_latency: 2_000,
            device_mem_bytes,
            pcie_bandwidth_gb_s: 12.0,
            // Scaled with the datasets: the real ~8 us per-operation latency
            // would dominate 128x-smaller transfers and erase every
            // kernel-side effect the paper measures.
            pcie_latency_ns: 1_000,
            hiding_cap: 24,
            sanitizer: SanitizerMode::Off,
            profiling: false,
            host_threads: 1,
        }
    }

    /// The same preset with a sanitizer attached.
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// The same preset with `eta-prof` event recording enabled.
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// The same preset replaying per-SM launch stages on `n` host threads.
    pub fn with_host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// Rejects degenerate fields before they reach div/mod arithmetic deep
    /// inside the launch path (PR 9 regression: `num_sms = 0` panicked with
    /// a raw divide-by-zero out of `block % num_sms`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_sms == 0 {
            return Err(ConfigError::ZeroSms);
        }
        if self.max_resident_warps == 0 {
            return Err(ConfigError::ZeroResidentWarps);
        }
        if self.hiding_cap == 0 {
            return Err(ConfigError::ZeroHidingCap);
        }
        if self.host_threads == 0 {
            return Err(ConfigError::ZeroHostThreads);
        }
        if !self.clock_ghz.is_finite() || self.clock_ghz <= 0.0 {
            return Err(ConfigError::BadClock);
        }
        if !self.dram_bandwidth_gb_s.is_finite() || self.dram_bandwidth_gb_s <= 0.0 {
            return Err(ConfigError::BadDramBandwidth);
        }
        if self.l1.ways == 0 {
            return Err(ConfigError::ZeroL1Ways);
        }
        if self.l1.line_bytes == 0 {
            return Err(ConfigError::ZeroL1Line);
        }
        if self.l2.ways == 0 {
            return Err(ConfigError::ZeroL2Ways);
        }
        if self.l2.line_bytes == 0 {
            return Err(ConfigError::ZeroL2Line);
        }
        Ok(())
    }

    /// Device memory used by the scaled evaluation.
    ///
    /// 88 MiB ≈ 11 GiB / 128, consistent with the ~128× dataset scale-down,
    /// chosen so the O.O.M boundaries of Table III fall between the same
    /// dataset pairs as in the paper (see eta-bench's `table3` and DESIGN.md
    /// for the per-framework footprint arithmetic).
    pub const DEFAULT_DEVICE_MEM: u64 = 88 * 1024 * 1024;

    /// Default preset used across tests and benches.
    pub fn default_preset() -> Self {
        Self::gtx1080ti_scaled(Self::DEFAULT_DEVICE_MEM)
    }

    /// DRAM bytes transferred per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gb_s / self.clock_ghz
    }

    /// Converts core cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.clock_ghz).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_sane() {
        let c = GpuConfig::default_preset();
        assert_eq!(c.num_sms, 28);
        assert!(c.l1.lines() > 0);
        assert!(c.l2.size_bytes > c.l1.size_bytes);
        assert!(c.dram_bytes_per_cycle() > 100.0);
    }

    #[test]
    fn cycle_conversion() {
        let c = GpuConfig::gtx1080ti_scaled(1 << 20);
        // 1.48 GHz: 1480 cycles = 1000 ns.
        assert_eq!(c.cycles_to_ns(1480), 1000);
        assert_eq!(c.cycles_to_ns(0), 0);
    }

    /// Regression (PR 9): each degenerate field used to surface as a raw
    /// div/mod-by-zero panic deep inside `Device::launch`; now every one is
    /// a typed error at validation time.
    #[test]
    fn degenerate_fields_are_typed_errors() {
        let ok = GpuConfig::default_preset();
        assert_eq!(ok.validate(), Ok(()));

        type Case = (fn(&mut GpuConfig), ConfigError);
        let cases: &[Case] = &[
            (|c| c.num_sms = 0, ConfigError::ZeroSms),
            (|c| c.max_resident_warps = 0, ConfigError::ZeroResidentWarps),
            (|c| c.hiding_cap = 0, ConfigError::ZeroHidingCap),
            (|c| c.host_threads = 0, ConfigError::ZeroHostThreads),
            (|c| c.clock_ghz = 0.0, ConfigError::BadClock),
            (|c| c.clock_ghz = -1.0, ConfigError::BadClock),
            (|c| c.clock_ghz = f64::NAN, ConfigError::BadClock),
            (
                |c| c.dram_bandwidth_gb_s = 0.0,
                ConfigError::BadDramBandwidth,
            ),
            (
                |c| c.dram_bandwidth_gb_s = f64::INFINITY,
                ConfigError::BadDramBandwidth,
            ),
            (|c| c.l1.ways = 0, ConfigError::ZeroL1Ways),
            (|c| c.l1.line_bytes = 0, ConfigError::ZeroL1Line),
            (|c| c.l2.ways = 0, ConfigError::ZeroL2Ways),
            (|c| c.l2.line_bytes = 0, ConfigError::ZeroL2Line),
        ];
        for (mutate, want) in cases {
            let mut c = GpuConfig::default_preset();
            mutate(&mut c);
            assert_eq!(c.validate(), Err(*want), "expected {want:?}");
            // The error renders without panicking.
            assert!(!want.to_string().is_empty());
        }
    }

    #[test]
    fn host_threads_builder_round_trips() {
        let c = GpuConfig::default_preset().with_host_threads(4);
        assert_eq!(c.host_threads, 4);
        assert_eq!(c.validate(), Ok(()));
    }
}
