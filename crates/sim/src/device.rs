//! The simulated device: SMs, caches, scheduler and the kernel timing model.
//!
//! # Timing model
//!
//! Thread blocks are assigned round-robin to SMs; each warp runs to
//! completion through [`crate::warp::WarpCtx`], accumulating warp
//! instructions and raw memory-stall cycles. Per SM:
//!
//! ```text
//! sm_cycles = instructions + stall / hiding
//! hiding    = min(resident_warps, hiding_cap)
//! ```
//!
//! — multithreading hides memory latency proportionally to how many warps
//! the SM can switch between (bounded, because MSHRs and the memory pipeline
//! saturate). The kernel's duration is the slowest SM, floored by the DRAM
//! bandwidth bound `dram_bytes / bytes_per_cycle`:
//!
//! ```text
//! kernel_cycles = max(max_sm(sm_cycles), dram_bytes / bw_per_cycle)
//! ```
//!
//! Load imbalance (the paper's motivation for Unified Degree Cut) therefore
//! shows up directly: a warp stuck on a million-edge vertex inflates its
//! SM's cycle count and the whole kernel waits for it.
//!
//! # Occupancy
//!
//! Resident warps per SM — which set both the latency-hiding factor and the
//! cache-interleave pressure — are limited by the hardware warp limit, by
//! the grid size, and by per-block shared-memory usage. A kernel that asks
//! for more shared memory per block (large SMP degree limit `K`) reduces its
//! own occupancy, a real trade-off the `K`-sweep ablation measures.

use crate::config::{ConfigError, GpuConfig};
use crate::kernel::{Kernel, LaunchConfig};
use crate::metrics::KernelMetrics;
use crate::sanitizer::{Sanitizer, SanitizerReport};
use eta_fault::{DeviceFault, FaultKind, FaultPlan};
use eta_mem::access::{L1DrainParams, PipeOp, SmQueue};
use eta_mem::cache::Cache;
use eta_mem::pcie::PcieLink;
use eta_mem::system::MemSystem;
use eta_mem::timeline::{Span, SpanKind, Timeline};
use eta_mem::Ns;
use eta_prof::{ArgValue, Profile, Track};

/// The simulated GPU.
pub struct Device {
    pub cfg: GpuConfig,
    pub mem: MemSystem,
    l1: Vec<Cache>,
    l2: Cache,
    /// Compute spans recorded by launches (transfer spans live on the link).
    pub compute_timeline: Timeline,
    /// Attached when `cfg.sanitizer` enables any analysis.
    sanitizer: Option<Sanitizer>,
    /// Per-SM record/replay arenas for the staged launch pipeline, reused
    /// across launches so the hot path allocates nothing once warm.
    queues: Vec<SmQueue>,
    /// Canonical record order: the SM index of every recorded access, in
    /// block-major execution order. The serial residency and L2 stages walk
    /// this to replay shared state exactly as the inline path did.
    order: Vec<u32>,
}

/// Outcome of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchResult {
    /// When kernel compute finishes, given a `start` and the timing model.
    pub end_ns: Ns,
    pub metrics: KernelMetrics,
}

impl Device {
    /// Builds a device, panicking on a degenerate configuration. Use
    /// [`Device::try_new`] to handle [`ConfigError`] instead.
    pub fn new(cfg: GpuConfig) -> Self {
        // lint: allow(L-PANIC): infallible-constructor convenience for known-good presets; the fallible path is try_new
        Self::try_new(cfg).expect("invalid GpuConfig")
    }

    /// Builds a device after [`GpuConfig::validate`], so degenerate fields
    /// (`num_sms = 0`, zero cache ways, …) surface as typed errors rather
    /// than div-by-zero panics mid-launch.
    pub fn try_new(cfg: GpuConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let pcie = PcieLink::new(cfg.pcie_bandwidth_gb_s, cfg.pcie_latency_ns);
        let mut mem = MemSystem::new(cfg.device_mem_bytes, pcie);
        let sanitizer = if cfg.sanitizer.enabled() {
            if cfg.sanitizer.memcheck() {
                mem.enable_init_tracking();
            }
            Some(Sanitizer::new(cfg.sanitizer))
        } else {
            None
        };
        mem.prof.set_enabled(cfg.profiling);
        Ok(Device {
            cfg,
            mem,
            l1: (0..cfg.num_sms).map(|_| Cache::new(cfg.l1)).collect(),
            l2: Cache::new(cfg.l2),
            compute_timeline: Timeline::new(),
            sanitizer,
            queues: (0..cfg.num_sms).map(|_| SmQueue::default()).collect(),
            order: Vec::new(),
        })
    }

    /// The sanitizer's findings so far; `None` when no sanitizer is attached.
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Installs a fault plan for this device (identified as `device` in the
    /// plan's entries). Injection happens inside [`Device::launch`] and the
    /// memory system's demand-migration path; detected failures are
    /// collected with [`Device::take_fault`]. Installing an empty plan is a
    /// timing no-op.
    pub fn install_faults(&mut self, plan: &FaultPlan, device: u32) {
        self.mem.install_faults(plan, device);
    }

    /// Collects the earliest detected (and not yet collected) device fault.
    /// Callers running kernels poll this after each launch; a `Some` means
    /// the query on this device is dead and must be retried or degraded
    /// (see eta-serve's recovery ladder).
    pub fn take_fault(&mut self) -> Option<DeviceFault> {
        self.mem.faults.take_pending()
    }

    /// Full transfer+compute timeline (PCIe spans + compute spans).
    pub fn merged_timeline(&self) -> Timeline {
        let mut t = Timeline::new();
        for s in self.mem.pcie.timeline.spans() {
            t.push(*s);
        }
        for s in self.compute_timeline.spans() {
            t.push(*s);
        }
        t
    }

    /// Resident warps per SM for a launch, honoring warp and shared-memory
    /// limits.
    pub fn occupancy(&self, launch: &LaunchConfig, shared_words_per_block: u64) -> u64 {
        let warps_per_block = (launch.threads_per_block as u64).div_ceil(32).max(1);
        let max_blocks_by_warps = self.cfg.max_resident_warps as u64 / warps_per_block;
        let shared_bytes = shared_words_per_block * 4;
        let max_blocks_by_shared = self
            .cfg
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(u64::MAX);
        let total_warps = launch.blocks as u64 * warps_per_block;
        let warps_if_unlimited = total_warps.div_ceil(self.cfg.num_sms as u64);
        (max_blocks_by_warps.min(max_blocks_by_shared) * warps_per_block)
            .min(warps_if_unlimited)
            .max(1)
    }

    /// Runs `kernel` over the launch grid starting at time `start_ns`.
    ///
    /// The kernel executes functionally (real data is read and written) while
    /// the memory hierarchy records costs; the result carries the modelled
    /// end time and the per-launch metric deltas.
    pub fn launch<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        launch: LaunchConfig,
        start_ns: Ns,
    ) -> LaunchResult {
        let mut metrics = KernelMetrics::default();
        if launch.blocks == 0 || launch.threads_per_block == 0 {
            return LaunchResult {
                end_ns: start_ns,
                metrics,
            };
        }

        let shared_words = kernel.shared_words_per_block(launch.threads_per_block);
        assert!(
            shared_words * 4 <= self.cfg.shared_mem_per_sm,
            "kernel '{}' requests {} B of shared memory per block; the SM has {} B \
             (CUDA would fail this launch)",
            kernel.name(),
            shared_words * 4,
            self.cfg.shared_mem_per_sm
        );
        let occupancy = self.occupancy(&launch, shared_words);
        // L2 interleaving pressure: between two instructions of one warp,
        // roughly one instruction per *SM* reaches the shared L2 (the other
        // co-resident warps' traffic is already serialized through the same
        // L2 instance by this simulator). Bounded by the grid's actual size.
        let total_warps = launch.blocks as u64 * (launch.threads_per_block as u64).div_ceil(32);
        let l2_interleave = (self.cfg.num_sms as u64).min(total_warps).max(1);
        let warps_per_block = (launch.threads_per_block as u64).div_ceil(32) as u32;

        // New kernels start cold in L1 (flushed per launch, as on hardware
        // where L1 is not coherent across kernels). L2 persists.
        for c in &mut self.l1 {
            c.flush();
        }

        let mut sm_instr = vec![0u64; self.cfg.num_sms];
        let mut sm_stall = vec![0u64; self.cfg.num_sms];
        let mut shared = vec![0u32; shared_words as usize];

        if let Some(san) = self.sanitizer.as_mut() {
            san.begin_launch(kernel.name());
        }
        let zc_mark = self.mem.zero_copy_bytes;

        // ---- Stage 1: record (serial, canonical block-major order) ------
        // Warps execute functionally — real loads, stores, atomics, all
        // sanitizer hooks — in exactly the inline path's order, but global
        // accesses are recorded into per-SM queues instead of probing the
        // caches. Functional results and sanitizer findings are therefore
        // byte-identical by construction; the cache/residency effects are
        // replayed below.
        for q in &mut self.queues {
            q.clear();
        }
        self.order.clear();
        for block in 0..launch.blocks {
            let sm = (block as usize) % self.cfg.num_sms;
            shared.fill(0);
            for warp in 0..warps_per_block {
                let mut ctx = crate::warp::WarpCtx::new_recording(
                    &self.cfg,
                    &mut self.mem,
                    sm as u32,
                    &mut self.queues[sm],
                    &mut self.order,
                    &mut shared,
                    crate::warp::WarpId {
                        block,
                        warp_in_block: warp,
                        threads_per_block: launch.threads_per_block,
                        grid_blocks: launch.blocks,
                    },
                    occupancy,
                    l2_interleave,
                    start_ns,
                    self.sanitizer.as_mut(),
                );
                kernel.run(&mut ctx);
                let (instr, stall) = ctx.finish(&mut metrics);
                sm_instr[sm] += instr;
                sm_stall[sm] += stall;
            }
        }
        if let Some(san) = self.sanitizer.as_mut() {
            san.end_launch();
        }

        let host_threads = self.cfg.host_threads;

        // ---- Stage 2: coalesce (parallel per SM) ------------------------
        eta_par::for_each_mut_threads(host_threads, &mut self.queues, |_, q| q.coalesce());

        // ---- Stage 3: residency + zero-copy classification (serial) -----
        // UM migrations, PCIe spans, adaptive-policy evolution and fault
        // injection are shared state: replay them in the canonical order.
        {
            let mut cursor = vec![0usize; self.cfg.num_sms];
            for &sm in &self.order {
                let smi = sm as usize;
                let q = &mut self.queues[smi];
                let rec = q.recs[cursor[smi]];
                cursor[smi] += 1;
                let secs = &q.sectors[rec.sec_start..rec.sec_start + rec.sec_len];
                let zc = &mut q.zc[rec.sec_start..rec.sec_start + rec.sec_len];
                let arrival = self.mem.resolve_access(rec.region, secs, start_ns, zc);
                metrics.data_ready_ns = metrics.data_ready_ns.max(arrival);
            }
        }

        // ---- Stage 4: L1 drain (parallel per SM) ------------------------
        // Each SM's L1 is private and flushed per launch, so its probe
        // sequence is fully determined by its own queue.
        {
            let params = L1DrainParams {
                l1_latency: self.cfg.l1_latency,
                zero_copy_latency: self.cfg.zero_copy_latency,
                interleave: occupancy,
            };
            let mut per_sm: Vec<(&mut Cache, &mut SmQueue)> =
                self.l1.iter_mut().zip(self.queues.iter_mut()).collect();
            eta_par::for_each_mut_threads(host_threads, &mut per_sm, |_, (l1, q)| {
                eta_mem::access::drain_l1(q, l1, &params);
            });
        }

        // ---- Stage 5: shared L2/DRAM drain (serial, canonical order) ----
        {
            let mut rec_cursor = vec![0usize; self.cfg.num_sms];
            let mut l2_cursor = vec![0usize; self.cfg.num_sms];
            for &sm in &self.order {
                let smi = sm as usize;
                let q = &mut self.queues[smi];
                let i = rec_cursor[smi];
                rec_cursor[smi] += 1;
                let Some(&work) = q.l2q.get(l2_cursor[smi]) else {
                    continue;
                };
                if work.rec != i {
                    continue;
                }
                l2_cursor[smi] += 1;
                let rec = q.recs[work.rec];
                let mut worst_d = 0u64;
                for &sec in &q.l2q_sectors[work.sec_start..work.sec_start + work.sec_len] {
                    match rec.op {
                        PipeOp::Load => {
                            metrics.l2_requests += 1;
                            if self.l2.access(sec) {
                                metrics.l2.hits += 1;
                                worst_d = worst_d.max(self.cfg.l2_latency);
                            } else {
                                metrics.l2.misses += 1;
                                metrics.dram_transactions += 1;
                                worst_d = worst_d.max(self.cfg.dram_latency);
                            }
                        }
                        PipeOp::Store | PipeOp::Atomic => {
                            if !self.l2.access(sec) {
                                metrics.dram_write_transactions += 1;
                            }
                        }
                    }
                }
                let inserted = work.sec_len as u64;
                if rec.burst {
                    self.l2.tick(inserted);
                } else {
                    // The L2 absorbs traffic from every SM concurrently.
                    self.l2.tick(l2_interleave * inserted);
                }
                if rec.charge {
                    let worst = work.worst_c.max(worst_d);
                    sm_stall[smi] += worst;
                    metrics.mem_stall_cycles += worst;
                }
            }
        }

        // Merge the per-SM stage results in SM-index order.
        for (smi, q) in self.queues.iter().enumerate() {
            metrics.l1_requests += q.l1_requests;
            metrics.l1.hits += q.l1_hits;
            metrics.l1.misses += q.l1_requests - q.l1_hits;
            metrics.mem_stall_cycles += q.stall;
            sm_stall[smi] += q.stall;
        }

        // Warp-accumulated counters are already in `metrics`; derive bytes.
        metrics.dram_bytes = (metrics.dram_transactions + metrics.dram_write_transactions) * 32;

        // Timing.
        let hiding = occupancy.min(self.cfg.hiding_cap as u64).max(1);
        let sm_cycles = sm_instr
            .iter()
            .zip(&sm_stall)
            .map(|(&i, &s)| i + s / hiding)
            .max()
            .unwrap_or(0);
        let dram_cycles = (metrics.dram_bytes as f64 / self.cfg.dram_bytes_per_cycle()) as u64;
        let cycles = sm_cycles.max(dram_cycles).max(1);
        metrics.cycles = cycles;
        metrics.time_ns = self.cfg.cycles_to_ns(cycles).max(1);
        metrics.occupancy_warps = occupancy;

        // The kernel occupies the device until both its compute finishes and
        // its last demand-migrated page has arrived — warps stall in place on
        // UM faults. `time_ns` stays pure compute (the paper's t_kernel); the
        // recorded span covers the stall, which is exactly the overlapped
        // region Fig. 4 plots.
        let mut end_ns = (start_ns + metrics.time_ns).max(metrics.data_ready_ns);

        // Zero-copy traffic of this launch occupies the PCIe link as one
        // aggregate ZeroCopyRead span (per-sector latency is already in the
        // warps' stall cycles; this adds the *bandwidth* bound and makes the
        // traffic visible to Fig.-4-style overlap accounting). The launch
        // cannot retire before its host reads have all crossed the link.
        let zc_bytes = self.mem.zero_copy_bytes - zc_mark;
        if zc_bytes > 0 {
            let zc_end = self.mem.charge_zero_copy(zc_bytes, start_ns);
            end_ns = end_ns.max(zc_end);
        }

        // Fault injection (eta-fault): inert unless a plan is installed, so
        // the default path stays byte-identical.
        if self.mem.faults.active {
            // Watchdog: a launch starting inside a hang window that exceeds
            // its cycle budget is killed at start + budget.
            if let Some(budget) = self.mem.faults.hang_budget(start_ns) {
                if end_ns - start_ns > budget {
                    end_ns = start_ns + budget;
                    self.mem.faults.counters.hangs += 1;
                    let device = self.mem.faults.device();
                    self.mem.faults.set_pending(DeviceFault {
                        kind: FaultKind::KernelHang,
                        device,
                        at_ns: end_ns,
                    });
                    self.mem.prof.instant(
                        Track::Fault,
                        "kernel_hang",
                        end_ns,
                        vec![
                            ("kernel", kernel.name().into()),
                            ("device", device.into()),
                            ("budget_ns", budget.into()),
                        ],
                    );
                }
            }
            // One-shot ECC events covered by the (possibly shortened) launch
            // span fire now: single-bit corrects and continues, double-bit
            // fails the launch.
            for e in self.mem.faults.fire_ecc(start_ns, end_ns) {
                let device = self.mem.faults.device();
                if e.double_bit {
                    self.mem.faults.set_pending(DeviceFault {
                        kind: FaultKind::EccDoubleBit,
                        device,
                        at_ns: e.at_ns,
                    });
                }
                self.mem.prof.instant(
                    Track::Fault,
                    "ecc_error",
                    e.at_ns,
                    vec![
                        ("kernel", kernel.name().into()),
                        ("device", device.into()),
                        ("addr_start", e.addr_start.into()),
                        ("addr_words", e.addr_words.into()),
                        ("double_bit", e.double_bit.into()),
                    ],
                );
                if let Some(san) = self.sanitizer.as_mut() {
                    san.note_ecc(
                        kernel.name(),
                        e.addr_start,
                        e.addr_words,
                        e.double_bit,
                        e.at_ns,
                    );
                }
            }
        }

        self.compute_timeline.push(Span {
            kind: SpanKind::Compute,
            start: start_ns,
            end: end_ns,
            bytes: 0,
        });
        if self.mem.prof.is_enabled() {
            let args: Vec<(&'static str, ArgValue)> = vec![
                ("cycles", metrics.cycles.into()),
                ("instructions", metrics.instructions.into()),
                ("ipc", metrics.ipc().into()),
                ("time_ns", metrics.time_ns.into()),
                ("warps", metrics.warps.into()),
                ("occupancy_warps", metrics.occupancy_warps.into()),
                (
                    "warp_efficiency",
                    metrics.warp_execution_efficiency().into(),
                ),
                ("l1_sector_requests", metrics.l1_requests.into()),
                ("l1_hit_rate", metrics.l1_hit_rate().into()),
                ("l2_sector_requests", metrics.l2_requests.into()),
                ("l2_hit_rate", metrics.l2_hit_rate().into()),
                ("dram_read_transactions", metrics.dram_transactions.into()),
                (
                    "dram_write_transactions",
                    metrics.dram_write_transactions.into(),
                ),
                ("dram_bytes", metrics.dram_bytes.into()),
                ("shared_accesses", metrics.shared_accesses.into()),
                (
                    "shared_bank_conflicts",
                    metrics.shared_bank_conflicts.into(),
                ),
                ("atomics", metrics.atomics.into()),
                ("mem_stall_cycles", metrics.mem_stall_cycles.into()),
            ];
            self.mem
                .prof
                .record(Track::Kernel, kernel.name(), start_ns, end_ns, args);
        }
        LaunchResult { end_ns, metrics }
    }

    /// The profile recorded so far as a single-process [`Profile`].
    ///
    /// Empty unless the device was built with
    /// [`GpuConfig::with_profiling`](crate::config::GpuConfig::with_profiling)
    /// (or `mem.prof` was enabled by hand).
    pub fn profile(&self) -> Profile {
        Profile::single("device", self.mem.prof.events().to_vec())
    }

    /// Clears caches and timelines for a fresh experiment on the same data.
    pub fn reset_run_state(&mut self) {
        for c in &mut self.l1 {
            c.flush();
            c.reset_stats();
        }
        self.l2.flush();
        self.l2.reset_stats();
        self.compute_timeline.clear();
        self.mem.pcie.reset();
        self.mem.um.invalidate_all();
        self.mem.um.reset_stats();
        self.mem.prof.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, LaunchConfig};
    use crate::warp::WarpCtx;
    use eta_mem::system::DSlice;

    /// out[i] = in[i] * 2 over n elements.
    struct DoubleKernel {
        input: DSlice,
        output: DSlice,
        n: u32,
    }

    impl Kernel for DoubleKernel {
        fn name(&self) -> &'static str {
            "double"
        }

        fn run(&self, w: &mut WarpCtx<'_>) {
            let ids = w.thread_ids();
            let mask = w.mask_for_items(self.n);
            if mask == 0 {
                return;
            }
            let vals = w.load(self.input, &ids, mask);
            let mut out = [0u32; 32];
            for (o, v) in out.iter_mut().zip(vals.iter()) {
                *o = v * 2;
            }
            w.alu(1);
            w.store(self.output, &ids, &out, mask);
        }
    }

    fn grid(n: u32, tpb: u32) -> LaunchConfig {
        LaunchConfig {
            blocks: n.div_ceil(tpb),
            threads_per_block: tpb,
        }
    }

    #[test]
    fn kernel_computes_correct_values() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let n = 10_000u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        dev.mem.host_write(input, 0, &(0..n).collect::<Vec<u32>>());
        let k = DoubleKernel { input, output, n };
        let r = dev.launch(&k, grid(n, 256), 0);
        assert!(r.end_ns > 0);
        let out = dev.mem.host_read(output, 0, n as u64);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn metrics_are_populated() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let n = 4096u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        let k = DoubleKernel { input, output, n };
        let r = dev.launch(&k, grid(n, 256), 0);
        let m = r.metrics;
        assert_eq!(m.warps, 128);
        assert!(m.instructions >= 3 * 128, "3 instructions per warp");
        assert!(m.l1_requests > 0);
        assert!(m.cycles > 0);
        assert!(m.ipc() > 0.0);
        assert_eq!(
            m.dram_bytes,
            (m.dram_transactions + m.dram_write_transactions) * 32
        );
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let input = dev.mem.alloc_explicit(32).unwrap();
        let output = dev.mem.alloc_explicit(32).unwrap();
        let k = DoubleKernel {
            input,
            output,
            n: 0,
        };
        let r = dev.launch(
            &k,
            LaunchConfig {
                blocks: 0,
                threads_per_block: 256,
            },
            123,
        );
        assert_eq!(r.end_ns, 123);
        assert_eq!(r.metrics.instructions, 0);
    }

    #[test]
    fn more_work_takes_more_cycles() {
        // Compare two sizes that both saturate occupancy, so the scaling is
        // not confounded by the latency-hiding difference between tiny and
        // large grids (which is itself realistic behaviour).
        let mut dev = Device::new(GpuConfig::default_preset());
        let medium = {
            let n = 16_384u32;
            let i = dev.mem.alloc_explicit(n as u64).unwrap();
            let o = dev.mem.alloc_explicit(n as u64).unwrap();
            dev.launch(
                &DoubleKernel {
                    input: i,
                    output: o,
                    n,
                },
                grid(n, 256),
                0,
            )
        };
        let big = {
            let n = 262_144u32;
            let i = dev.mem.alloc_explicit(n as u64).unwrap();
            let o = dev.mem.alloc_explicit(n as u64).unwrap();
            dev.launch(
                &DoubleKernel {
                    input: i,
                    output: o,
                    n,
                },
                grid(n, 256),
                0,
            )
        };
        assert!(
            big.metrics.cycles > 4 * medium.metrics.cycles,
            "16x work at equal occupancy must cost >4x cycles: {} vs {}",
            big.metrics.cycles,
            medium.metrics.cycles
        );
    }

    #[test]
    fn occupancy_respects_shared_memory_limit() {
        let dev = Device::new(GpuConfig::default_preset());
        let launch = LaunchConfig {
            blocks: 1000,
            threads_per_block: 256,
        };
        let free = dev.occupancy(&launch, 0);
        // 96 KiB shared / 24 KiB per block = 4 blocks = 32 warps.
        let constrained = dev.occupancy(&launch, 24 * 1024 / 4);
        assert!(constrained < free);
        assert_eq!(constrained, 32);
    }

    #[test]
    fn occupancy_small_grid_is_grid_bound() {
        let dev = Device::new(GpuConfig::default_preset());
        let launch = LaunchConfig {
            blocks: 28,
            threads_per_block: 64,
        };
        assert_eq!(dev.occupancy(&launch, 0), 2, "one 2-warp block per SM");
    }

    #[test]
    fn compute_spans_are_recorded() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let n = 2048u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        let k = DoubleKernel { input, output, n };
        dev.launch(&k, grid(n, 256), 500);
        let spans = dev.compute_timeline.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, 500);
        assert!(spans[0].end > 500);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn impossible_shared_memory_launch_is_rejected() {
        struct Greedy;
        impl Kernel for Greedy {
            fn shared_words_per_block(&self, _t: u32) -> u64 {
                1 << 20 // 4 MiB per block >> 96 KiB per SM
            }
            fn run(&self, _w: &mut WarpCtx<'_>) {}
        }
        let mut dev = Device::new(GpuConfig::default_preset());
        dev.launch(
            &Greedy,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 256,
            },
            0,
        );
    }

    #[test]
    fn profiling_records_kernel_events_with_counters() {
        let mut dev = Device::new(GpuConfig::default_preset().with_profiling());
        let n = 2048u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        dev.launch(&DoubleKernel { input, output, n }, grid(n, 256), 0);
        let events = dev.mem.prof.events();
        let kernel: Vec<_> = events
            .iter()
            .filter(|e| e.track == eta_prof::Track::Kernel)
            .collect();
        assert_eq!(kernel.len(), 1);
        assert_eq!(kernel[0].name, "double");
        let arg_names: Vec<&str> = kernel[0].args.iter().map(|(k, _)| *k).collect();
        for want in [
            "cycles",
            "ipc",
            "warp_efficiency",
            "l1_hit_rate",
            "l2_hit_rate",
            "dram_read_transactions",
            "shared_bank_conflicts",
            "mem_stall_cycles",
        ] {
            assert!(arg_names.contains(&want), "missing counter {want}");
        }
        // Explicit-allocation writes in the test setup plus any copies are
        // mirrored too; the single-process profile must see the kernel span.
        let p = dev.profile();
        assert!(p.kernel_busy_ns() > 0);
        // Disabled device records nothing.
        let mut quiet = Device::new(GpuConfig::default_preset());
        let i2 = quiet.mem.alloc_explicit(n as u64).unwrap();
        let o2 = quiet.mem.alloc_explicit(n as u64).unwrap();
        quiet.launch(
            &DoubleKernel {
                input: i2,
                output: o2,
                n,
            },
            grid(n, 256),
            0,
        );
        assert!(quiet.mem.prof.is_empty());
        assert_eq!(quiet.mem.prof.allocated_bytes(), 0);
    }

    #[test]
    fn hang_window_kills_a_long_launch_at_its_budget() {
        use eta_fault::{FaultPlan, HangFault};
        let mut dev = Device::new(GpuConfig::default_preset());
        let n = 262_144u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        let clean = dev.launch(&DoubleKernel { input, output, n }, grid(n, 256), 0);
        assert!(clean.end_ns > 10, "kernel long enough to exceed the budget");
        assert!(dev.take_fault().is_none(), "no plan: no faults");

        let mut plan = FaultPlan::default();
        plan.hangs.push(HangFault {
            device: 0,
            start_ns: 0,
            end_ns: u64::MAX,
            budget_ns: 10,
        });
        let mut faulty = Device::new(GpuConfig::default_preset());
        faulty.install_faults(&plan, 0);
        let i2 = faulty.mem.alloc_explicit(n as u64).unwrap();
        let o2 = faulty.mem.alloc_explicit(n as u64).unwrap();
        let r = faulty.launch(
            &DoubleKernel {
                input: i2,
                output: o2,
                n,
            },
            grid(n, 256),
            0,
        );
        assert_eq!(r.end_ns, 10, "watchdog kill at start + budget");
        let f = faulty.take_fault().expect("hang detected");
        assert_eq!(f.kind, eta_fault::FaultKind::KernelHang);
        assert_eq!(f.at_ns, 10);
        assert_eq!(faulty.mem.faults.counters.hangs, 1);
        assert!(faulty.take_fault().is_none(), "collected once");
    }

    #[test]
    fn ecc_events_fire_once_inside_a_covering_launch() {
        use eta_fault::{EccFault, FaultPlan};
        let mut plan = FaultPlan::default();
        plan.ecc.push(EccFault {
            device: 0,
            at_ns: 5,
            addr_start: 0,
            addr_words: 8,
            double_bit: false,
        });
        plan.ecc.push(EccFault {
            device: 0,
            at_ns: 6,
            addr_start: 64,
            addr_words: 8,
            double_bit: true,
        });
        let mut dev = Device::new(GpuConfig::default_preset().with_profiling());
        dev.install_faults(&plan, 0);
        let n = 65_536u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        let r = dev.launch(&DoubleKernel { input, output, n }, grid(n, 256), 0);
        assert!(r.end_ns >= 6, "launch span covers both events");
        let f = dev.take_fault().expect("double-bit ECC fails the launch");
        assert_eq!(f.kind, eta_fault::FaultKind::EccDoubleBit);
        assert_eq!(f.at_ns, 6);
        assert_eq!(dev.mem.faults.counters.ecc_corrected, 1);
        assert_eq!(dev.mem.faults.counters.ecc_uncorrected, 1);
        let ecc_events: Vec<_> = dev
            .mem
            .prof
            .events()
            .iter()
            .filter(|e| e.track == eta_prof::Track::Fault && e.name == "ecc_error")
            .collect();
        assert_eq!(ecc_events.len(), 2, "one profiler instant per ECC event");
        // A second launch must not re-fire the one-shot events.
        let i2 = dev.mem.alloc_explicit(n as u64).unwrap();
        let o2 = dev.mem.alloc_explicit(n as u64).unwrap();
        dev.launch(
            &DoubleKernel {
                input: i2,
                output: o2,
                n,
            },
            grid(n, 256),
            0,
        );
        assert!(dev.take_fault().is_none());
        assert_eq!(dev.mem.faults.counters.ecc_uncorrected, 1);
    }

    #[test]
    fn ecc_errors_surface_through_the_sanitizer() {
        use crate::sanitizer::{FindingKind, SanitizerMode, Severity};
        use eta_fault::{EccFault, FaultPlan};
        let mut plan = FaultPlan::default();
        plan.ecc.push(EccFault {
            device: 0,
            at_ns: 0,
            addr_start: 128,
            addr_words: 4,
            double_bit: true,
        });
        plan.ecc.push(EccFault {
            device: 0,
            at_ns: 1,
            addr_start: 256,
            addr_words: 4,
            double_bit: false,
        });
        let mut cfg = GpuConfig::default_preset();
        cfg.sanitizer = SanitizerMode::Memcheck;
        let mut dev = Device::new(cfg);
        dev.install_faults(&plan, 0);
        let n = 4096u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        dev.mem.host_write(input, 0, &vec![1u32; n as usize]);
        dev.launch(&DoubleKernel { input, output, n }, grid(n, 256), 0);
        let rep = dev.sanitizer_report().expect("sanitizer attached");
        let errors: Vec<_> = rep
            .errors
            .iter()
            .filter(|f| f.kind == FindingKind::EccError)
            .collect();
        assert_eq!(errors.len(), 1, "double-bit is an error");
        assert_eq!(errors[0].severity, Severity::Error);
        assert_eq!(errors[0].addr, 128);
        assert!(errors[0].detail.contains("double-bit"));
        let warnings: Vec<_> = rep
            .warnings
            .iter()
            .filter(|f| f.kind == FindingKind::EccError)
            .collect();
        assert_eq!(warnings.len(), 1, "single-bit is a corrected warning");
        assert!(!rep.is_clean());
    }

    #[test]
    fn empty_plan_install_keeps_launch_timing_identical() {
        let run = |install: bool| {
            let mut dev = Device::new(GpuConfig::default_preset());
            if install {
                dev.install_faults(&eta_fault::FaultPlan::default(), 0);
            }
            let n = 65_536u32;
            let input = dev.mem.alloc_explicit(n as u64).unwrap();
            let output = dev.mem.alloc_explicit(n as u64).unwrap();
            let r = dev.launch(&DoubleKernel { input, output, n }, grid(n, 256), 0);
            (r.end_ns, r.metrics.cycles)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reset_run_state_clears_everything() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let n = 2048u32;
        let input = dev.mem.alloc_explicit(n as u64).unwrap();
        let output = dev.mem.alloc_explicit(n as u64).unwrap();
        dev.launch(&DoubleKernel { input, output, n }, grid(n, 256), 0);
        dev.reset_run_state();
        assert!(dev.compute_timeline.spans().is_empty());
        assert_eq!(dev.mem.pcie.bytes_moved(), 0);
    }
}
