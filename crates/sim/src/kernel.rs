//! The kernel abstraction: what frameworks implement to run on the device.

use crate::warp::WarpCtx;

/// Grid dimensions of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub blocks: u32,
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// One thread per item with the given block size.
    pub fn for_items(n_items: u32, threads_per_block: u32) -> Self {
        LaunchConfig {
            blocks: n_items.div_ceil(threads_per_block.max(1)),
            threads_per_block,
        }
    }

    pub fn total_threads(&self) -> u64 {
        self.blocks as u64 * self.threads_per_block as u64
    }
}

/// A GPU kernel: invoked once per warp with a [`WarpCtx`].
///
/// Kernels must be warp-shaped: per-lane state lives in `[u32; 32]` register
/// arrays and control flow runs to the maximum trip count of the warp with
/// inactive lanes masked — divergence costs instructions, exactly as SIMT
/// hardware charges it.
pub trait Kernel {
    /// Name for profiling output.
    fn name(&self) -> &'static str {
        "kernel"
    }

    /// Shared-memory words this kernel needs per thread block. Affects
    /// occupancy (blocks per SM) and therefore latency hiding.
    fn shared_words_per_block(&self, _threads_per_block: u32) -> u64 {
        0
    }

    /// Executes one warp.
    fn run(&self, w: &mut WarpCtx<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_for_items_rounds_up() {
        let c = LaunchConfig::for_items(1000, 256);
        assert_eq!(c.blocks, 4);
        assert_eq!(c.total_threads(), 1024);
        let exact = LaunchConfig::for_items(512, 256);
        assert_eq!(exact.blocks, 2);
        let zero = LaunchConfig::for_items(0, 256);
        assert_eq!(zero.blocks, 0);
    }
}
