//! `eta-sim` — a deterministic, warp-level GPU execution simulator.
//!
//! This crate is the "GPU" of the EtaGraph reproduction. Kernels are Rust
//! values implementing [`Kernel`]; they execute *functionally* (real loads,
//! stores and atomics against device memory) while the memory hierarchy of
//! [`eta_mem`] records coalescing, cache behaviour, DRAM traffic and Unified
//! Memory migrations. A launch returns both the computed data and a
//! [`KernelMetrics`] with the modelled time and the `nvprof`-style counters
//! the paper's Fig. 7 reports.
//!
//! See [`device`] for the timing model and [`warp`] for the access API.
//! With [`GpuConfig::with_profiling`] each launch additionally records an
//! `eta-prof` event carrying the full counter snapshot; [`Device::profile`]
//! returns the accumulated profile (see PROFILING.md).

// Kernels address per-lane register arrays by explicit lane index under an
// active mask — the SIMT idiom this simulator exists to model. Iterator
// rewrites of those loops obscure the lane structure.
#![allow(clippy::needless_range_loop)]
pub mod config;
pub mod device;
pub mod kernel;
pub mod metrics;
pub mod sanitizer;
pub mod warp;

pub use config::{ConfigError, GpuConfig, WARP_SIZE};
pub use device::{Device, LaunchResult};
pub use kernel::{Kernel, LaunchConfig};
pub use metrics::KernelMetrics;
pub use sanitizer::{
    Finding, FindingKind, KernelLintStats, Sanitizer, SanitizerMode, SanitizerReport, Severity,
};
pub use warp::{Lanes, WarpCtx, WarpId, FULL_MASK};
