//! Kernel execution metrics — the simulator's `nvprof`.
//!
//! Fig. 7 of the paper compares IPC, unified (L1+texture) cache hit rate, L2
//! hit rate, read throughputs and global memory transactions with and
//! without Shared Memory Prefetch. Every one of those is a ratio of counters
//! collected here.

use eta_mem::cache::CacheStats;
use eta_mem::Ns;
use serde::Serialize;

/// Counters for one kernel launch (or an accumulation of launches).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct KernelMetrics {
    /// Warp instructions issued (memory + ALU + atomics).
    pub instructions: u64,
    /// Modelled kernel duration in core cycles.
    pub cycles: u64,
    /// Modelled kernel duration in nanoseconds.
    pub time_ns: Ns,
    /// Sector requests reaching L1 (nvprof "unified cache" requests).
    pub l1_requests: u64,
    /// L1 hits / misses.
    #[serde(skip)]
    pub l1: CacheStats,
    /// Sector requests reaching L2.
    pub l2_requests: u64,
    /// L2 hits / misses.
    #[serde(skip)]
    pub l2: CacheStats,
    /// Read sectors serviced by DRAM — nvprof's "global memory read
    /// transactions", the Fig. 7 metric.
    pub dram_transactions: u64,
    /// Write/atomic sectors that missed L2 and hit DRAM.
    pub dram_write_transactions: u64,
    /// Bytes moved from DRAM.
    pub dram_bytes: u64,
    /// Shared-memory instructions executed.
    pub shared_accesses: u64,
    /// Shared-memory replays from bank conflicts: for each shared access,
    /// the number of extra cycles a hardware scheduler would replay because
    /// two lanes addressed *different* words in the same bank (same-word
    /// lanes broadcast for free).
    pub shared_bank_conflicts: u64,
    /// Active lanes summed over lane-maskable instructions (nvprof's
    /// numerator for `warp_execution_efficiency`).
    pub lane_ops: u64,
    /// Lane slots issued: `32 ×` the same instruction count (denominator).
    pub lane_slots: u64,
    /// Atomic operations executed (lane-level).
    pub atomics: u64,
    /// Raw (un-hidden) memory stall cycles accumulated by warps.
    pub mem_stall_cycles: u64,
    /// Warps launched.
    pub warps: u64,
    /// Resident warps per SM assumed by the latency-hiding model.
    pub occupancy_warps: u64,
    /// Latest data-arrival time among UM pages this kernel had to wait for.
    pub data_ready_ns: Ns,
}

impl KernelMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Unified (L1) cache hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.hit_rate()
    }

    /// L2 cache hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    /// L1 read throughput in GB/s (sectors served per unit time).
    pub fn l1_throughput_gb_s(&self) -> f64 {
        throughput(self.l1_requests * 32, self.time_ns)
    }

    /// L2 read throughput in GB/s.
    pub fn l2_throughput_gb_s(&self) -> f64 {
        throughput(self.l2_requests * 32, self.time_ns)
    }

    /// DRAM read throughput in GB/s.
    pub fn dram_throughput_gb_s(&self) -> f64 {
        throughput(self.dram_bytes, self.time_ns)
    }

    /// nvprof's `warp_execution_efficiency`: average fraction of active
    /// lanes per issued lane-maskable instruction. 1.0 when nothing issued
    /// (a fully-converged empty kernel wastes no lanes).
    pub fn warp_execution_efficiency(&self) -> f64 {
        if self.lane_slots == 0 {
            1.0
        } else {
            self.lane_ops as f64 / self.lane_slots as f64
        }
    }

    /// Accumulates another launch into this one (iteration totals).
    pub fn merge(&mut self, other: &KernelMetrics) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.time_ns += other.time_ns;
        self.l1_requests += other.l1_requests;
        self.l1.merge(&other.l1);
        self.l2_requests += other.l2_requests;
        self.l2.merge(&other.l2);
        self.dram_transactions += other.dram_transactions;
        self.dram_write_transactions += other.dram_write_transactions;
        self.dram_bytes += other.dram_bytes;
        self.shared_accesses += other.shared_accesses;
        self.shared_bank_conflicts += other.shared_bank_conflicts;
        self.lane_ops += other.lane_ops;
        self.lane_slots += other.lane_slots;
        self.atomics += other.atomics;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.warps += other.warps;
        self.occupancy_warps = self.occupancy_warps.max(other.occupancy_warps);
        self.data_ready_ns = self.data_ready_ns.max(other.data_ready_ns);
    }
}

fn throughput(bytes: u64, time_ns: Ns) -> f64 {
    if time_ns == 0 {
        0.0
    } else {
        bytes as f64 / time_ns as f64 // bytes per ns == GB/s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_throughput_handle_zero_time() {
        let m = KernelMetrics::default();
        assert_eq!(m.ipc(), 0.0);
        assert_eq!(m.dram_throughput_gb_s(), 0.0);
        assert_eq!(m.warp_execution_efficiency(), 1.0, "nothing issued");
    }

    #[test]
    fn warp_efficiency_is_active_lane_fraction() {
        let m = KernelMetrics {
            lane_ops: 48,
            lane_slots: 64,
            ..Default::default()
        };
        assert!((m.warp_execution_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelMetrics {
            instructions: 10,
            cycles: 100,
            time_ns: 50,
            dram_bytes: 320,
            ..Default::default()
        };
        let b = KernelMetrics {
            instructions: 30,
            cycles: 100,
            time_ns: 50,
            dram_bytes: 320,
            data_ready_ns: 999,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 40);
        assert_eq!(a.cycles, 200);
        assert_eq!(a.data_ready_ns, 999);
        assert!((a.ipc() - 0.2).abs() < 1e-12);
        assert!((a.dram_throughput_gb_s() - 6.4).abs() < 1e-12);
    }
}
