//! `eta-sanitizer`: a `compute-sanitizer` analogue for the simulated GPU.
//!
//! The simulator executes warps to completion, one at a time, so bug classes
//! that corrupt results on real hardware are silently serialized away:
//! inter-warp data races on label arrays, out-of-bounds CSR indexing, reads
//! of never-initialized device words. This module is the diagnostic layer
//! that makes them visible again — the same job `compute-sanitizer` does for
//! real CUDA kernels. Three analyses run over the per-lane access stream:
//!
//! * **memcheck** — every global access is bounds-checked against its
//!   [`DSlice`] before address resolution (offending lanes are masked off
//!   and reported, mirroring compute-sanitizer's report-and-continue), and
//!   every global read is checked against the per-word initialization shadow
//!   state kept by [`MemSystem`] (`--tool memcheck` / `--tool initcheck`).
//! * **racecheck** — within one launch, two warps touching the same global
//!   word where at least one access is a *non-atomic* store is a data race:
//!   the run-to-completion scheduler imposes an ordering the hardware does
//!   not. Shared-memory words get the same treatment between warps of one
//!   block; the kernel API has no `__syncthreads` analogue, so any such pair
//!   is a true hazard, not a barrier-ordered handoff (`--tool racecheck`).
//! * **lint** — advisory access-pattern diagnostics per kernel: sectors per
//!   instruction and the fraction of fully-uncoalesced sites, branch
//!   divergence ratio, degenerate (≤1-row) SMP bursts, and a shared-memory
//!   bank-conflict estimate. These mirror what Nsight Compute flags; on
//!   irregular graph traversal some are expected and they are therefore
//!   [`Severity::Warning`], never errors.
//!
//! The sanitizer is opt-in via [`crate::GpuConfig::sanitizer`]; when off, the
//! hot paths in [`crate::warp::WarpCtx`] skip every hook.

use crate::config::WARP_SIZE;
use crate::warp::{Lanes, WarpId};
use eta_mem::system::{DSlice, MemSystem, RegionKind};
use serde::Serialize;
use std::collections::HashMap;

/// Which analyses run. `Full` is what `--sanitize` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum SanitizerMode {
    #[default]
    Off,
    Memcheck,
    Racecheck,
    Lint,
    Full,
}

impl SanitizerMode {
    pub fn enabled(self) -> bool {
        self != SanitizerMode::Off
    }

    pub fn memcheck(self) -> bool {
        matches!(self, SanitizerMode::Memcheck | SanitizerMode::Full)
    }

    pub fn racecheck(self) -> bool {
        matches!(self, SanitizerMode::Racecheck | SanitizerMode::Full)
    }

    pub fn lint(self) -> bool {
        matches!(self, SanitizerMode::Lint | SanitizerMode::Full)
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(SanitizerMode::Off),
            "memcheck" => Some(SanitizerMode::Memcheck),
            "racecheck" => Some(SanitizerMode::Racecheck),
            "lint" => Some(SanitizerMode::Lint),
            "full" => Some(SanitizerMode::Full),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            SanitizerMode::Off => "off",
            SanitizerMode::Memcheck => "memcheck",
            SanitizerMode::Racecheck => "racecheck",
            SanitizerMode::Lint => "lint",
            SanitizerMode::Full => "full",
        }
    }
}

/// The access kinds the hooks distinguish (mirror of the private coalescer
/// op, plus shared-memory traffic which never reaches the coalescer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
    Atomic,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FindingKind {
    /// Global index past its slice length (memcheck).
    OutOfBounds,
    /// Shared-memory index past the block's shared allocation (memcheck).
    SharedOutOfBounds,
    /// Global read of a word no host copy or kernel store wrote (memcheck).
    UninitRead,
    /// Two warps, same global word, ≥1 non-atomic store (racecheck).
    GlobalRace,
    /// Two warps of one block, same shared word, ≥1 store (racecheck).
    SharedRace,
    /// Sectors/instruction near the active lane count: no coalescing (lint).
    UncoalescedAccess,
    /// Mean active-lane fraction below threshold (lint).
    HighDivergence,
    /// SMP bursts that cover ≤1 row: vectorization buys nothing (lint).
    DegenerateBurst,
    /// Estimated shared-memory bank serialization above threshold (lint).
    SharedBankConflicts,
    /// An injected ECC error detected during a launch (eta-fault): corrected
    /// single-bit flips are warnings, uncorrectable double-bit flips errors.
    EccError,
    /// Store or atomic to a zero-copy region (lint). Writes over the mapped
    /// pinned path are uncached and serialize on the interconnect — real
    /// zero-copy graph layouts keep mutable state (labels, frontiers) in
    /// device memory and map only read-only topology.
    ZeroCopyStore,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    Error,
    Warning,
}

/// One reported site. Repeats at the same (kind, kernel, slice) fold into
/// `occurrences`, keeping the first site's coordinates — the
/// compute-sanitizer convention of one report per distinct hazard.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    pub kind: FindingKind,
    pub severity: Severity,
    pub kernel: String,
    pub block: u32,
    pub warp: u32,
    pub lane: u32,
    /// Region id of the slice (shared-memory findings use `u64::MAX`).
    pub region: u64,
    /// Global word address (shared findings: the shared word index).
    pub addr: u64,
    /// Element index within the slice at the first site.
    pub index: u64,
    pub slice_len: u64,
    pub occurrences: u64,
    pub detail: String,
}

/// Per-kernel access-pattern aggregates, accumulated across launches.
#[derive(Debug, Clone, Default, Serialize)]
pub struct KernelLintStats {
    pub name: String,
    pub launches: u64,
    /// Global-memory warp instructions (loads, stores, atomics; not bursts).
    pub mem_instructions: u64,
    /// Sum of active lanes over those instructions.
    pub active_lanes: u64,
    /// Sum of 32 B sector transactions those instructions issued.
    pub sectors: u64,
    /// Instructions with ≥8 active lanes that coalesced nothing at all.
    pub uncoalesced_sites: u64,
    pub shared_instructions: u64,
    /// Σ(max ways − 1) of the per-instruction bank multiplicity estimate.
    pub bank_conflict_excess: u64,
    pub bursts: u64,
    pub degenerate_bursts: u64,
}

impl KernelLintStats {
    /// Mean fraction of the 32 lanes active per global-memory instruction.
    pub fn divergence_ratio(&self) -> f64 {
        if self.mem_instructions == 0 {
            return 1.0;
        }
        self.active_lanes as f64 / (self.mem_instructions * WARP_SIZE as u64) as f64
    }

    pub fn sectors_per_instruction(&self) -> f64 {
        if self.mem_instructions == 0 {
            return 0.0;
        }
        self.sectors as f64 / self.mem_instructions as f64
    }

    pub fn uncoalesced_fraction(&self) -> f64 {
        if self.mem_instructions == 0 {
            return 0.0;
        }
        self.uncoalesced_sites as f64 / self.mem_instructions as f64
    }

    /// Mean shared-memory bank serialization (1.0 = conflict-free).
    pub fn avg_bank_conflict_ways(&self) -> f64 {
        if self.shared_instructions == 0 {
            return 1.0;
        }
        1.0 + self.bank_conflict_excess as f64 / self.shared_instructions as f64
    }
}

/// Lint thresholds (see DESIGN.md for the rationale). A kernel below the
/// instruction floors is too small to judge.
pub const LINT_MIN_INSTRUCTIONS: u64 = 64;
pub const LINT_UNCOALESCED_FRACTION: f64 = 0.25;
pub const LINT_UNCOALESCED_SECTORS_PER_INSTR: f64 = 8.0;
pub const LINT_DIVERGENCE_RATIO: f64 = 0.5;
pub const LINT_BANK_CONFLICT_WAYS: f64 = 2.0;
pub const LINT_MIN_BURSTS: u64 = 16;

/// The full result of a sanitized run, JSON-serializable for `--sanitize`
/// and `report sanitize`.
#[derive(Debug, Clone, Serialize)]
pub struct SanitizerReport {
    pub mode: &'static str,
    pub launches: u64,
    pub errors: Vec<Finding>,
    pub warnings: Vec<Finding>,
    pub kernels: Vec<KernelLintStats>,
}

impl SanitizerReport {
    /// No memcheck/racecheck errors (lint warnings are advisory).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn summarize(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sanitizer ({}): {} launches, {} error(s), {} warning(s)",
            self.mode,
            self.launches,
            self.errors.len(),
            self.warnings.len()
        );
        for f in self.errors.iter().chain(self.warnings.iter()) {
            let _ = writeln!(
                out,
                "  {:?} [{:?}] kernel={} warp=({},{}) lane={} addr={} x{}: {}",
                f.severity,
                f.kind,
                f.kernel,
                f.block,
                f.warp,
                f.lane,
                f.addr,
                f.occurrences,
                f.detail
            );
        }
        out
    }
}

/// Racecheck state for one word within one launch: the first two distinct
/// warps seen and the first warp that did a non-atomic store. A race exists
/// as soon as a storing warp and any *other* warp have both touched the word
/// — the store warp is one of the (≤2) recorded warps, so two distinct warps
/// plus a recorded store is necessary and sufficient.
#[derive(Debug, Clone, Copy)]
struct WordState {
    first_warp: (u32, u32),
    second_warp: Option<(u32, u32)>,
    store_warp: Option<(u32, u32)>,
    reported: bool,
}

/// Updates `map[key]` with one access; returns `Some((store_warp,
/// other_warp))` the first time the word becomes a race.
fn track<K: Eq + std::hash::Hash>(
    map: &mut HashMap<K, WordState>,
    key: K,
    warp: (u32, u32),
    plain_store: bool,
) -> Option<((u32, u32), (u32, u32))> {
    let st = map.entry(key).or_insert(WordState {
        first_warp: warp,
        second_warp: None,
        store_warp: None,
        reported: false,
    });
    if st.second_warp.is_none() && warp != st.first_warp {
        st.second_warp = Some(warp);
    }
    if plain_store && st.store_warp.is_none() {
        st.store_warp = Some(warp);
    }
    if st.reported {
        return None;
    }
    let sw = st.store_warp?;
    let other = if st.first_warp != sw {
        st.first_warp
    } else {
        st.second_warp?
    };
    st.reported = true;
    Some((sw, other))
}

/// Region id stand-in for shared-memory findings (shared memory is per-block
/// scratch, not a [`MemSystem`] region).
const SHARED_REGION: u64 = u64::MAX;

/// Region id stand-in for ECC findings (an ECC event hits a physical word
/// range, not a specific slice).
const ECC_REGION: u64 = u64::MAX - 1;

/// The streaming analysis sink. Owned by [`crate::Device`]; a mutable
/// reference is threaded through every [`crate::warp::WarpCtx`].
pub struct Sanitizer {
    mode: SanitizerMode,
    kernel: String,
    launches: u64,
    findings: Vec<Finding>,
    dedup: HashMap<(FindingKind, String, u64), usize>,
    /// Per-launch racecheck state, keyed by global word address.
    global_words: HashMap<u64, WordState>,
    /// Per-launch shared racecheck state, keyed by (block, shared index).
    shared_words: HashMap<(u32, u32), WordState>,
    lint: Vec<KernelLintStats>,
    lint_index: HashMap<String, usize>,
    cur_lint: usize,
}

impl Sanitizer {
    pub fn new(mode: SanitizerMode) -> Self {
        Sanitizer {
            mode,
            kernel: String::new(),
            launches: 0,
            findings: Vec::new(),
            dedup: HashMap::new(),
            global_words: HashMap::new(),
            shared_words: HashMap::new(),
            lint: Vec::new(),
            lint_index: HashMap::new(),
            cur_lint: 0,
        }
    }

    pub fn mode(&self) -> SanitizerMode {
        self.mode
    }

    pub fn begin_launch(&mut self, kernel: &str) {
        self.launches += 1;
        if self.kernel != kernel {
            self.kernel = kernel.to_string();
        }
        self.cur_lint = match self.lint_index.get(kernel) {
            Some(&i) => i,
            None => {
                self.lint_index.insert(kernel.to_string(), self.lint.len());
                self.lint.push(KernelLintStats {
                    name: kernel.to_string(),
                    ..KernelLintStats::default()
                });
                self.lint.len() - 1
            }
        };
        self.lint[self.cur_lint].launches += 1;
    }

    /// Racecheck scope is one launch: kernels in one grid run concurrently,
    /// successive launches are ordered by the stream.
    pub fn end_launch(&mut self) {
        self.global_words.clear();
        self.shared_words.clear();
    }

    #[allow(clippy::too_many_arguments)] // a finding site is irreducibly wide
    fn record(
        &mut self,
        kind: FindingKind,
        severity: Severity,
        id: WarpId,
        lane: u32,
        region: u64,
        addr: u64,
        index: u64,
        slice_len: u64,
        detail: String,
    ) {
        let key = (kind, self.kernel.clone(), region);
        if let Some(&i) = self.dedup.get(&key) {
            self.findings[i].occurrences += 1;
            return;
        }
        self.dedup.insert(key, self.findings.len());
        self.findings.push(Finding {
            kind,
            severity,
            kernel: self.kernel.clone(),
            block: id.block,
            warp: id.warp_in_block,
            lane,
            region,
            addr,
            index,
            slice_len,
            occurrences: 1,
            detail,
        });
    }

    // ---- hooks called from Device ----------------------------------------

    /// Records an injected ECC event (eta-fault) detected during `kernel`'s
    /// launch span. ECC detection is hardware-side, so it reports regardless
    /// of which analyses are enabled; each event is its own finding (no
    /// site folding — every ECC hit is a distinct physical event).
    pub fn note_ecc(
        &mut self,
        kernel: &str,
        addr_start: u64,
        addr_words: u64,
        double_bit: bool,
        at_ns: u64,
    ) {
        let (severity, what) = if double_bit {
            (Severity::Error, "uncorrectable double-bit")
        } else {
            (Severity::Warning, "corrected single-bit")
        };
        self.findings.push(Finding {
            kind: FindingKind::EccError,
            severity,
            kernel: kernel.to_string(),
            block: 0,
            warp: 0,
            lane: 0,
            region: ECC_REGION,
            addr: addr_start,
            index: 0,
            slice_len: addr_words,
            occurrences: 1,
            detail: format!(
                "{what} ECC error in words [{addr_start}, {}) at {at_ns} ns",
                addr_start + addr_words
            ),
        });
    }

    // ---- hooks called from WarpCtx ---------------------------------------

    /// Bounds pre-check for one global instruction: drops out-of-bounds
    /// lanes from the mask (report-and-continue; `DSlice::addr` would
    /// panic), recording one finding per offending slice.
    pub fn pre_access(&mut self, id: WarpId, s: DSlice, idx: &Lanes, mask: u32) -> u32 {
        let mut ok = mask;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 && idx[lane] as u64 >= s.len {
                ok &= !(1u32 << lane);
                self.record(
                    FindingKind::OutOfBounds,
                    Severity::Error,
                    id,
                    lane as u32,
                    s.region as u64,
                    s.word_off + idx[lane] as u64,
                    idx[lane] as u64,
                    s.len,
                    format!(
                        "global index {} out of bounds for slice of {} words",
                        idx[lane], s.len
                    ),
                );
            }
        }
        ok
    }

    /// Post-coalesce hook for one global instruction: uninitialized-read
    /// checks, race tracking and lint accounting over the effective mask.
    #[allow(clippy::too_many_arguments)] // mirrors the coalescer's operands
    pub fn global_access(
        &mut self,
        id: WarpId,
        kind: AccessKind,
        s: DSlice,
        idx: &Lanes,
        mask: u32,
        sectors: u64,
        mem: &MemSystem,
    ) {
        let active = mask.count_ones() as u64;
        if self.mode.lint() {
            let l = &mut self.lint[self.cur_lint];
            l.mem_instructions += 1;
            l.active_lanes += active;
            l.sectors += sectors;
            if active >= 8 && sectors >= active {
                l.uncoalesced_sites += 1;
            }
        }
        if active == 0 {
            return;
        }
        if self.mode.lint()
            && kind != AccessKind::Load
            && matches!(mem.region_kind(s.region), RegionKind::ZeroCopy)
        {
            let lane = mask.trailing_zeros();
            self.record(
                FindingKind::ZeroCopyStore,
                Severity::Warning,
                id,
                lane,
                s.region as u64,
                s.word_off + idx[lane as usize] as u64,
                idx[lane as usize] as u64,
                s.len,
                "store/atomic to a zero-copy mapping: uncached host writes serialize on the link"
                    .to_string(),
            );
        }
        // Atomics read-modify-write, so they join loads for the init check.
        let init_check = self.mode.memcheck() && kind != AccessKind::Store;
        let racecheck = self.mode.racecheck();
        if !init_check && !racecheck {
            return;
        }
        let warp = (id.block, id.warp_in_block);
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 != 1 {
                continue;
            }
            let addr = s.word_off + idx[lane] as u64;
            if init_check && !mem.is_word_init(addr) {
                self.record(
                    FindingKind::UninitRead,
                    Severity::Error,
                    id,
                    lane as u32,
                    s.region as u64,
                    addr,
                    idx[lane] as u64,
                    s.len,
                    format!("read of never-written device word (index {})", idx[lane]),
                );
            }
            if racecheck {
                if let Some((sw, other)) = track(
                    &mut self.global_words,
                    addr,
                    warp,
                    kind == AccessKind::Store,
                ) {
                    self.record(
                        FindingKind::GlobalRace,
                        Severity::Error,
                        id,
                        lane as u32,
                        s.region as u64,
                        addr,
                        idx[lane] as u64,
                        s.len,
                        format!(
                            "non-atomic store by warp ({},{}) races warp ({},{}) on the same word",
                            sw.0, sw.1, other.0, other.1
                        ),
                    );
                }
            }
        }
    }

    /// Bounds pre-check for a burst: a lane whose `start + count` overruns
    /// the slice is dropped entirely and reported.
    pub fn pre_burst(
        &mut self,
        id: WarpId,
        s: DSlice,
        start: &Lanes,
        count: &Lanes,
        mask: u32,
    ) -> u32 {
        let mut ok = mask;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1
                && count[lane] > 0
                && start[lane] as u64 + count[lane] as u64 > s.len
            {
                ok &= !(1u32 << lane);
                self.record(
                    FindingKind::OutOfBounds,
                    Severity::Error,
                    id,
                    lane as u32,
                    s.region as u64,
                    s.word_off + start[lane] as u64,
                    start[lane] as u64 + count[lane] as u64 - 1,
                    s.len,
                    format!(
                        "burst [{}..{}) out of bounds for slice of {} words",
                        start[lane],
                        start[lane] as u64 + count[lane] as u64,
                        s.len
                    ),
                );
            }
        }
        ok
    }

    /// Full-burst hook (all rows of all lanes): init/race checks per element
    /// plus burst-shape lint.
    pub fn burst_access(
        &mut self,
        id: WarpId,
        s: DSlice,
        start: &Lanes,
        count: &Lanes,
        mask: u32,
        mem: &MemSystem,
    ) {
        if self.mode.lint() {
            let rows = (0..WARP_SIZE)
                .filter(|&l| (mask >> l) & 1 == 1)
                .map(|l| count[l])
                .max()
                .unwrap_or(0);
            let l = &mut self.lint[self.cur_lint];
            l.bursts += 1;
            if rows <= 1 {
                l.degenerate_bursts += 1;
            }
        }
        let init_check = self.mode.memcheck();
        let racecheck = self.mode.racecheck();
        if !init_check && !racecheck {
            return;
        }
        let warp = (id.block, id.warp_in_block);
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 != 1 {
                continue;
            }
            for r in 0..count[lane] {
                let index = (start[lane] + r) as u64;
                let addr = s.word_off + index;
                if init_check && !mem.is_word_init(addr) {
                    self.record(
                        FindingKind::UninitRead,
                        Severity::Error,
                        id,
                        lane as u32,
                        s.region as u64,
                        addr,
                        index,
                        s.len,
                        format!("burst read of never-written device word (index {index})"),
                    );
                }
                if racecheck {
                    if let Some((sw, other)) = track(&mut self.global_words, addr, warp, false) {
                        self.record(
                            FindingKind::GlobalRace,
                            Severity::Error,
                            id,
                            lane as u32,
                            s.region as u64,
                            addr,
                            index,
                            s.len,
                            format!(
                                "non-atomic store by warp ({},{}) races warp ({},{}) on the same word",
                                sw.0, sw.1, other.0, other.1
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Shared-memory hook: bounds (returning the filtered mask), inter-warp
    /// race tracking within the block, and bank-conflict lint.
    pub fn shared_access(
        &mut self,
        id: WarpId,
        kind: AccessKind,
        shared_len: usize,
        idx: &Lanes,
        mask: u32,
    ) -> u32 {
        let mut ok = mask;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 && idx[lane] as usize >= shared_len {
                ok &= !(1u32 << lane);
                self.record(
                    FindingKind::SharedOutOfBounds,
                    Severity::Error,
                    id,
                    lane as u32,
                    SHARED_REGION,
                    idx[lane] as u64,
                    idx[lane] as u64,
                    shared_len as u64,
                    format!(
                        "shared index {} out of bounds for {} shared words",
                        idx[lane], shared_len
                    ),
                );
            }
        }
        if self.mode.lint() {
            let l = &mut self.lint[self.cur_lint];
            l.shared_instructions += 1;
            // Bank multiplicity over *distinct* addresses: same-word access
            // broadcasts on hardware and does not serialize.
            let mut distinct: Vec<u32> = (0..WARP_SIZE)
                .filter(|&lane| (ok >> lane) & 1 == 1)
                .map(|lane| idx[lane])
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            let mut banks = [0u32; 32];
            for a in distinct {
                banks[(a % 32) as usize] += 1;
            }
            let ways = banks.iter().copied().max().unwrap_or(0);
            if ways > 1 {
                l.bank_conflict_excess += (ways - 1) as u64;
            }
        }
        if self.mode.racecheck() {
            let warp = (id.block, id.warp_in_block);
            for lane in 0..WARP_SIZE {
                if (ok >> lane) & 1 != 1 {
                    continue;
                }
                if let Some((sw, other)) = track(
                    &mut self.shared_words,
                    (id.block, idx[lane]),
                    warp,
                    kind == AccessKind::Store,
                ) {
                    self.record(
                        FindingKind::SharedRace,
                        Severity::Error,
                        id,
                        lane as u32,
                        SHARED_REGION,
                        idx[lane] as u64,
                        idx[lane] as u64,
                        shared_len as u64,
                        format!(
                            "warps ({},{}) and ({},{}) of block {} conflict on shared word {} with no barrier",
                            sw.0, sw.1, other.0, other.1, id.block, idx[lane]
                        ),
                    );
                }
            }
        }
        ok
    }

    // ---- reporting -------------------------------------------------------

    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn report(&self) -> SanitizerReport {
        let mut errors = Vec::new();
        let mut warnings = Vec::new();
        for f in &self.findings {
            match f.severity {
                Severity::Error => errors.push(f.clone()),
                Severity::Warning => warnings.push(f.clone()),
            }
        }
        if self.mode.lint() {
            for l in &self.lint {
                let site = |kind, detail| Finding {
                    kind,
                    severity: Severity::Warning,
                    kernel: l.name.clone(),
                    block: 0,
                    warp: 0,
                    lane: 0,
                    region: 0,
                    addr: 0,
                    index: 0,
                    slice_len: 0,
                    occurrences: 1,
                    detail,
                };
                if l.mem_instructions >= LINT_MIN_INSTRUCTIONS
                    && l.uncoalesced_fraction() > LINT_UNCOALESCED_FRACTION
                    && l.sectors_per_instruction() > LINT_UNCOALESCED_SECTORS_PER_INSTR
                {
                    warnings.push(site(
                        FindingKind::UncoalescedAccess,
                        format!(
                            "{:.0}% of global instructions coalesce nothing ({:.1} sectors/instr)",
                            l.uncoalesced_fraction() * 100.0,
                            l.sectors_per_instruction()
                        ),
                    ));
                }
                if l.mem_instructions >= LINT_MIN_INSTRUCTIONS
                    && l.divergence_ratio() < LINT_DIVERGENCE_RATIO
                {
                    warnings.push(site(
                        FindingKind::HighDivergence,
                        format!(
                            "mean active-lane fraction {:.2} below {LINT_DIVERGENCE_RATIO}",
                            l.divergence_ratio()
                        ),
                    ));
                }
                if l.bursts >= LINT_MIN_BURSTS && l.degenerate_bursts * 2 > l.bursts {
                    warnings.push(site(
                        FindingKind::DegenerateBurst,
                        format!(
                            "{} of {} SMP bursts cover ≤1 row",
                            l.degenerate_bursts, l.bursts
                        ),
                    ));
                }
                if l.shared_instructions >= LINT_MIN_INSTRUCTIONS
                    && l.avg_bank_conflict_ways() > LINT_BANK_CONFLICT_WAYS
                {
                    warnings.push(site(
                        FindingKind::SharedBankConflicts,
                        format!(
                            "estimated {:.1}-way shared-memory bank serialization",
                            l.avg_bank_conflict_ways()
                        ),
                    ));
                }
            }
        }
        SanitizerReport {
            mode: self.mode.as_str(),
            launches: self.launches,
            errors,
            warnings,
            kernels: self.lint.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(block: u32, warp: u32) -> WarpId {
        WarpId {
            block,
            warp_in_block: warp,
            threads_per_block: 256,
            grid_blocks: 4,
        }
    }

    fn dslice(len: u64) -> DSlice {
        DSlice {
            region: 0,
            word_off: 0,
            len,
        }
    }

    #[test]
    fn mode_flags_and_parse() {
        assert!(!SanitizerMode::Off.enabled());
        assert!(SanitizerMode::Full.memcheck());
        assert!(SanitizerMode::Full.racecheck());
        assert!(SanitizerMode::Full.lint());
        assert!(SanitizerMode::Memcheck.memcheck());
        assert!(!SanitizerMode::Memcheck.racecheck());
        assert_eq!(
            SanitizerMode::parse("racecheck"),
            Some(SanitizerMode::Racecheck)
        );
        assert_eq!(SanitizerMode::parse("bogus"), None);
        assert_eq!(SanitizerMode::Full.as_str(), "full");
    }

    #[test]
    fn pre_access_masks_and_reports_oob() {
        let mut san = Sanitizer::new(SanitizerMode::Full);
        san.begin_launch("k");
        let mut idx = [0u32; WARP_SIZE];
        idx[3] = 100; // past the slice
        let ok = san.pre_access(wid(0, 0), dslice(10), &idx, 0b1111);
        assert_eq!(ok, 0b0111, "offending lane dropped");
        let rep = san.report();
        assert_eq!(rep.errors.len(), 1);
        assert_eq!(rep.errors[0].kind, FindingKind::OutOfBounds);
        assert_eq!(rep.errors[0].lane, 3);
        assert_eq!(rep.errors[0].index, 100);
        assert_eq!(rep.errors[0].slice_len, 10);
    }

    #[test]
    fn repeats_fold_into_occurrences() {
        let mut san = Sanitizer::new(SanitizerMode::Full);
        san.begin_launch("k");
        let mut idx = [0u32; WARP_SIZE];
        idx[0] = 50;
        for _ in 0..5 {
            san.pre_access(wid(0, 0), dslice(10), &idx, 1);
        }
        let rep = san.report();
        assert_eq!(rep.errors.len(), 1);
        assert_eq!(rep.errors[0].occurrences, 5);
    }

    #[test]
    fn race_needs_two_warps_and_a_plain_store() {
        // Same warp storing twice: no race.
        let mut m: HashMap<u64, WordState> = HashMap::new();
        assert!(track(&mut m, 7, (0, 0), true).is_none());
        assert!(track(&mut m, 7, (0, 0), true).is_none());
        // Second warp *loads* the stored word: race, reported once.
        let hit = track(&mut m, 7, (0, 1), false);
        assert_eq!(hit, Some(((0, 0), (0, 1))));
        assert!(track(&mut m, 7, (0, 2), false).is_none(), "reported once");

        // Atomics from many warps: never a race.
        let mut m2: HashMap<u64, WordState> = HashMap::new();
        for w in 0..8 {
            assert!(track(&mut m2, 9, (0, w), false).is_none());
        }
        // A store arriving *after* other warps already touched the word.
        assert_eq!(track(&mut m2, 9, (7, 7), true), Some(((7, 7), (0, 0))));
    }

    #[test]
    fn end_launch_clears_race_scope() {
        let mut san = Sanitizer::new(SanitizerMode::Racecheck);
        let mem = MemSystem::new(1 << 20, eta_mem::PcieLink::new(12.0, 1000));
        let s = dslice(64);
        let idx = [0u32; WARP_SIZE];
        san.begin_launch("a");
        san.global_access(wid(0, 0), AccessKind::Store, s, &idx, 1, 1, &mem);
        san.end_launch();
        // A different launch touching the same word is stream-ordered.
        san.begin_launch("b");
        san.global_access(wid(1, 0), AccessKind::Load, s, &idx, 1, 1, &mem);
        san.end_launch();
        assert!(san.report().is_clean());
    }

    #[test]
    fn lint_thresholds() {
        let mut l = KernelLintStats {
            mem_instructions: 100,
            active_lanes: 100 * 8,
            sectors: 100 * 30,
            uncoalesced_sites: 90,
            ..KernelLintStats::default()
        };
        assert!(l.divergence_ratio() < LINT_DIVERGENCE_RATIO);
        assert!(l.uncoalesced_fraction() > LINT_UNCOALESCED_FRACTION);
        assert!(l.sectors_per_instruction() > LINT_UNCOALESCED_SECTORS_PER_INSTR);
        l.shared_instructions = 100;
        l.bank_conflict_excess = 1500; // 16-way conflicts throughout
        assert!(l.avg_bank_conflict_ways() > LINT_BANK_CONFLICT_WAYS);
        // Empty stats stay neutral.
        let e = KernelLintStats::default();
        assert_eq!(e.divergence_ratio(), 1.0);
        assert_eq!(e.avg_bank_conflict_ways(), 1.0);
    }

    #[test]
    fn shared_bank_conflict_estimate_counts_strided_access() {
        let mut san = Sanitizer::new(SanitizerMode::Lint);
        san.begin_launch("k");
        // Stride 16 over 32 lanes → addresses hit 2 banks, 16 deep.
        let mut idx = [0u32; WARP_SIZE];
        for (lane, slot) in idx.iter_mut().enumerate() {
            *slot = (lane as u32) * 16;
        }
        san.shared_access(wid(0, 0), AccessKind::Load, 1 << 10, &idx, u32::MAX);
        assert_eq!(san.lint[0].bank_conflict_excess, 15);
        // Broadcast (same word) is conflict-free.
        san.shared_access(
            wid(0, 0),
            AccessKind::Load,
            1 << 10,
            &[5; WARP_SIZE],
            u32::MAX,
        );
        assert_eq!(san.lint[0].bank_conflict_excess, 15);
    }

    #[test]
    fn zero_copy_store_is_a_lint_warning() {
        let mut san = Sanitizer::new(SanitizerMode::Full);
        let mut mem = MemSystem::new(1 << 20, eta_mem::PcieLink::new(12.0, 1000));
        let zc = mem.alloc_zero_copy(64);
        san.begin_launch("k");
        let idx = [0u32; WARP_SIZE];
        // Loads through zero-copy are the intended pattern: clean.
        san.global_access(wid(0, 0), AccessKind::Load, zc, &idx, 1, 1, &mem);
        assert!(san.report().warnings.is_empty());
        // A store is flagged — as a warning, so gates stay green.
        san.global_access(wid(0, 0), AccessKind::Store, zc, &idx, 1, 1, &mem);
        san.global_access(wid(0, 0), AccessKind::Atomic, zc, &idx, 1, 1, &mem);
        let rep = san.report();
        assert!(rep.is_clean(), "warnings never break is_clean");
        assert_eq!(rep.warnings.len(), 1, "site-folded");
        assert_eq!(rep.warnings[0].kind, FindingKind::ZeroCopyStore);
        assert_eq!(rep.warnings[0].occurrences, 2);
        // Stores to a normal explicit region are not flagged.
        let ex = mem.alloc_explicit(64).unwrap();
        san.global_access(wid(0, 0), AccessKind::Store, ex, &idx, 1, 1, &mem);
        assert_eq!(san.report().warnings.len(), 1);
    }

    #[test]
    fn report_serializes_to_json() {
        let mut san = Sanitizer::new(SanitizerMode::Full);
        san.begin_launch("k");
        let mut idx = [0u32; WARP_SIZE];
        idx[0] = 99;
        san.pre_access(wid(2, 1), dslice(4), &idx, 1);
        let rep = san.report();
        assert!(!rep.is_clean());
        let text = rep.summarize();
        assert!(text.contains("OutOfBounds"), "{text}");
        assert!(text.contains("kernel=k"), "{text}");
    }
}
