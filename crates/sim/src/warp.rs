//! Warp-level execution context: the API kernels are written against.
//!
//! A kernel processes one warp per [`crate::kernel::Kernel::run`] call, with
//! explicit 32-lane register arrays and an active-lane mask — the same shape
//! CUDA kernels take after the SIMT transformation. Every global access goes
//! through the coalescer and the cache hierarchy, so divergence, scattered
//! access and reuse cost exactly what they would on hardware:
//!
//! * [`WarpCtx::load`] / [`WarpCtx::store`] — one warp instruction; the 32
//!   lane addresses coalesce into 32 B sector transactions.
//! * [`WarpCtx::load_burst`] — the Shared-Memory-Prefetch access shape: up to
//!   `K` back-to-back loads per lane with pipelined issue. Burst steps
//!   advance the cache-interleaving clock by one instead of the co-resident
//!   warp count, so sector reuse inside the burst survives — the mechanism
//!   behind the paper's Fig. 7.
//! * [`WarpCtx::atomic_add`] / [`WarpCtx::atomic_min`] — lane-serialized
//!   read-modify-write at L2, used for active-set appends and label
//!   relaxation.
//! * [`WarpCtx::load_shared`] / [`WarpCtx::store_shared`] — block-shared
//!   scratchpad at L1 speed with no global traffic.

use crate::config::{GpuConfig, WARP_SIZE};
use crate::metrics::KernelMetrics;
use crate::sanitizer::{AccessKind, Sanitizer};
use eta_mem::access::{PipeOp, SmQueue};
use eta_mem::cache::Cache;
use eta_mem::coalesce::sectors_for_warp;
use eta_mem::system::{DSlice, MemSystem, RegionKind};
use eta_mem::Ns;

/// Per-lane register file slice: one `u32` per lane.
pub type Lanes = [u32; WARP_SIZE];

/// A fully-active warp mask.
pub const FULL_MASK: u32 = u32::MAX;

/// Identity of a warp within a launch.
#[derive(Debug, Clone, Copy)]
pub struct WarpId {
    pub block: u32,
    pub warp_in_block: u32,
    pub threads_per_block: u32,
    pub grid_blocks: u32,
}

/// Where a warp's global accesses go: straight into the cache hierarchy
/// (the classic inline path, kept for direct `WarpCtx` users), or into the
/// owning SM's record queue for the staged launch pipeline (see
/// [`eta_mem::access`]).
enum Route<'a> {
    Direct {
        l1: &'a mut Cache,
        l2: &'a mut Cache,
    },
    Record {
        sm: u32,
        queue: &'a mut SmQueue,
        /// Global record order: one SM index per recorded access, shared by
        /// every warp of the launch. The serial residency and L2 stages
        /// replay it to keep shared-state evolution byte-identical to the
        /// inline path.
        order: &'a mut Vec<u32>,
    },
}

/// Mutable execution state for one warp.
pub struct WarpCtx<'a> {
    pub cfg: &'a GpuConfig,
    pub mem: &'a mut MemSystem,
    route: Route<'a>,
    shared: &'a mut [u32],
    id: WarpId,
    /// Co-resident warps on this SM: the L1 cache-interleaving factor.
    interleave: u64,
    /// Concurrent warps device-wide: the L2 cache-interleaving factor.
    l2_interleave: u64,
    /// Kernel start time (used to timestamp UM faults).
    start_ns: Ns,
    /// Warp instruction count (this warp).
    instructions: u64,
    /// Raw memory stall cycles (this warp).
    stall: u64,
    shared_accesses: u64,
    shared_bank_conflicts: u64,
    /// Active lanes over lane-maskable instructions (divergence numerator).
    lane_ops: u64,
    /// 32 × lane-maskable instructions issued (divergence denominator).
    lane_slots: u64,
    atomics: u64,
    l1_requests: u64,
    l1_hits: u64,
    l2_read_requests: u64,
    l2_read_hits: u64,
    dram_read_transactions: u64,
    dram_write_transactions: u64,
    data_ready_ns: Ns,
    sector_scratch: Vec<u64>,
    addr_scratch: [u64; WARP_SIZE],
    /// Sanitizer sink; `None` unless the device was built with one attached.
    san: Option<&'a mut Sanitizer>,
}

impl<'a> WarpCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: &'a GpuConfig,
        mem: &'a mut MemSystem,
        l1: &'a mut Cache,
        l2: &'a mut Cache,
        shared: &'a mut [u32],
        id: WarpId,
        interleave: u64,
        l2_interleave: u64,
        start_ns: Ns,
        san: Option<&'a mut Sanitizer>,
    ) -> Self {
        Self::with_route(
            cfg,
            mem,
            Route::Direct { l1, l2 },
            shared,
            id,
            interleave,
            l2_interleave,
            start_ns,
            san,
        )
    }

    /// Builds a warp context in record mode for the staged launch pipeline:
    /// global accesses append to `queue` (this SM's arena) and `order` (the
    /// launch-wide canonical order) instead of probing the caches inline.
    #[allow(clippy::too_many_arguments)]
    pub fn new_recording(
        cfg: &'a GpuConfig,
        mem: &'a mut MemSystem,
        sm: u32,
        queue: &'a mut SmQueue,
        order: &'a mut Vec<u32>,
        shared: &'a mut [u32],
        id: WarpId,
        interleave: u64,
        l2_interleave: u64,
        start_ns: Ns,
        san: Option<&'a mut Sanitizer>,
    ) -> Self {
        Self::with_route(
            cfg,
            mem,
            Route::Record { sm, queue, order },
            shared,
            id,
            interleave,
            l2_interleave,
            start_ns,
            san,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_route(
        cfg: &'a GpuConfig,
        mem: &'a mut MemSystem,
        route: Route<'a>,
        shared: &'a mut [u32],
        id: WarpId,
        interleave: u64,
        l2_interleave: u64,
        start_ns: Ns,
        san: Option<&'a mut Sanitizer>,
    ) -> Self {
        WarpCtx {
            cfg,
            mem,
            route,
            shared,
            id,
            interleave: interleave.max(1),
            l2_interleave: l2_interleave.max(1),
            start_ns,
            instructions: 0,
            stall: 0,
            shared_accesses: 0,
            shared_bank_conflicts: 0,
            lane_ops: 0,
            lane_slots: 0,
            atomics: 0,
            l1_requests: 0,
            l1_hits: 0,
            l2_read_requests: 0,
            l2_read_hits: 0,
            dram_read_transactions: 0,
            dram_write_transactions: 0,
            data_ready_ns: start_ns,
            sector_scratch: Vec::with_capacity(WARP_SIZE),
            addr_scratch: [0; WARP_SIZE],
            san,
        }
    }

    // ---- identity --------------------------------------------------------

    pub fn id(&self) -> WarpId {
        self.id
    }

    /// Global thread ID of each lane.
    pub fn thread_ids(&self) -> Lanes {
        let base = self.id.block * self.id.threads_per_block + self.id.warp_in_block * 32;
        let mut out = [0u32; WARP_SIZE];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = base + lane as u32;
        }
        out
    }

    /// Mask of lanes whose global thread ID is below `n_items`.
    pub fn mask_for_items(&self, n_items: u32) -> u32 {
        let ids = self.thread_ids();
        let mut mask = 0u32;
        for (lane, &id) in ids.iter().enumerate() {
            if id < n_items {
                mask |= 1 << lane;
            }
        }
        mask
    }

    // ---- accounting ------------------------------------------------------

    /// Charges `n` ALU warp instructions (address math, compares, ...).
    /// ALU work carries no lane mask in this API, so it counts fully
    /// active — divergence is measured on the masked memory path.
    pub fn alu(&mut self, n: u64) {
        self.instructions += n;
        self.lane_ops += n * WARP_SIZE as u64;
        self.lane_slots += n * WARP_SIZE as u64;
    }

    /// Tallies one lane-maskable instruction's active lanes into the
    /// warp-execution-efficiency counters.
    #[inline]
    fn count_lanes(&mut self, active: u32) {
        self.lane_ops += active as u64;
        self.lane_slots += WARP_SIZE as u64;
    }

    /// Drains this warp's counters into launch-level accumulators.
    /// Returns `(instructions, stall_cycles)` for per-SM aggregation.
    pub fn finish(self, metrics: &mut KernelMetrics) -> (u64, u64) {
        metrics.instructions += self.instructions;
        metrics.mem_stall_cycles += self.stall;
        metrics.shared_accesses += self.shared_accesses;
        metrics.shared_bank_conflicts += self.shared_bank_conflicts;
        metrics.lane_ops += self.lane_ops;
        metrics.lane_slots += self.lane_slots;
        metrics.atomics += self.atomics;
        metrics.l1_requests += self.l1_requests;
        metrics.l1.hits += self.l1_hits;
        metrics.l1.misses += self.l1_requests - self.l1_hits;
        metrics.l2_requests += self.l2_read_requests;
        metrics.l2.hits += self.l2_read_hits;
        metrics.l2.misses += self.l2_read_requests - self.l2_read_hits;
        metrics.dram_transactions += self.dram_read_transactions;
        metrics.dram_write_transactions += self.dram_write_transactions;
        metrics.warps += 1;
        metrics.data_ready_ns = metrics.data_ready_ns.max(self.data_ready_ns);
        (self.instructions, self.stall)
    }

    // ---- global memory ---------------------------------------------------

    /// Resolves active lanes' element indices to word addresses, coalesces
    /// them and runs the cache/UM pipeline. Returns the effective lane mask
    /// (the sanitizer drops out-of-bounds lanes, report-and-continue, where
    /// `DSlice::addr` would otherwise panic) and the worst sector latency.
    fn access(
        &mut self,
        s: DSlice,
        idx: &Lanes,
        mask: u32,
        op: AccessOp,
        burst: bool,
    ) -> (u32, u64) {
        let mask = match self.san.as_deref_mut() {
            Some(san) => san.pre_access(self.id, s, idx, mask),
            None => mask,
        };
        self.count_lanes(mask.count_ones());
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                self.addr_scratch[lane] = s.addr(idx[lane] as u64);
            } else {
                // Parked at the first active address so it never adds sectors.
                self.addr_scratch[lane] = 0;
            }
        }
        // Re-park inactive lanes on an active lane's address (address 0 may
        // belong to a different region/page).
        if mask != 0 && mask != FULL_MASK {
            let first_active = mask.trailing_zeros() as usize;
            let park = self.addr_scratch[first_active];
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 == 0 {
                    self.addr_scratch[lane] = park;
                }
            }
        }
        // The sanitizer reports per-access transaction counts and the
        // direct path probes the sectors; record mode without a sanitizer
        // skips the sort entirely — stage 2 of the pipeline coalesces later,
        // off the serial critical path.
        if self.san.is_some() || matches!(self.route, Route::Direct { .. }) {
            sectors_for_warp(&self.addr_scratch, mask, &mut self.sector_scratch);
        }
        if let Some(san) = self.san.as_deref_mut() {
            san.global_access(
                self.id,
                op.kind(),
                s,
                idx,
                mask,
                self.sector_scratch.len() as u64,
                self.mem,
            );
        }
        // No active lane coalesces to no sectors: nothing to probe or record.
        if mask == 0 {
            return (mask, 0);
        }
        if matches!(self.route, Route::Record { .. }) {
            // Loads charge their worst sector latency once it is known (the
            // L1/L2 drain stages); stores and atomics charge constant costs
            // at the call sites below, so their records charge nothing.
            self.record_access(s, op, burst, matches!(op, AccessOp::Load), mask);
            return (mask, 0);
        }
        let worst = self.probe_scratch_sectors(s, op, burst);
        (mask, worst)
    }

    /// Appends the active lanes' word addresses (already in `addr_scratch`)
    /// as one access record in the owning SM's queue.
    fn record_access(&mut self, s: DSlice, op: AccessOp, burst: bool, charge: bool, mask: u32) {
        if let Route::Record { sm, queue, order } = &mut self.route {
            let addr_start = queue.addrs.len();
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 == 1 {
                    queue.addrs.push(self.addr_scratch[lane]);
                }
            }
            queue.commit(s.region, op.pipe(), burst, charge, addr_start);
            order.push(*sm);
        }
    }

    /// Runs the UM/cache pipeline over the sectors currently in
    /// `sector_scratch` (sorted, deduplicated). Returns the worst latency.
    /// Direct-route only — record mode defers all of this to the staged
    /// pipeline.
    fn probe_scratch_sectors(&mut self, s: DSlice, op: AccessOp, burst: bool) -> u64 {
        let arrival = self
            .mem
            .ensure_resident(s.region, &self.sector_scratch, self.start_ns);
        self.data_ready_ns = self.data_ready_ns.max(arrival);
        let all_zero_copy = matches!(self.mem.region_kind(s.region), RegionKind::ZeroCopy);
        // Unified regions under the adaptive policy serve some page groups
        // zero-copy; the per-sector check is skipped entirely otherwise so
        // the static modes keep their flat fast path.
        let adaptive = !all_zero_copy && self.mem.region_is_adaptive(s.region);

        let mut worst = self.cfg.l1_latency;
        let mut l1_inserted = 0u64; // load sectors (only loads allocate in L1)
        let mut l2_inserted = 0u64; // sectors that reached L2
        let Route::Direct { l1, l2 } = &mut self.route else {
            return worst;
        };
        for &sec in &self.sector_scratch {
            if all_zero_copy || (adaptive && self.mem.sector_zero_copy(s.region, sec)) {
                worst = worst.max(self.cfg.zero_copy_latency);
                continue;
            }
            match op {
                AccessOp::Load => {
                    l1_inserted += 1;
                    self.l1_requests += 1;
                    if l1.access(sec) {
                        self.l1_hits += 1;
                        // L1 hit: base latency already covers it.
                    } else {
                        l2_inserted += 1;
                        self.l2_read_requests += 1;
                        if l2.access(sec) {
                            self.l2_read_hits += 1;
                            worst = worst.max(self.cfg.l2_latency);
                        } else {
                            self.dram_read_transactions += 1;
                            worst = worst.max(self.cfg.dram_latency);
                        }
                    }
                }
                AccessOp::Store | AccessOp::Atomic => {
                    // Write-through, L2-allocate; no L1 allocation (Pascal
                    // global stores bypass L1).
                    l2_inserted += 1;
                    if !l2.access(sec) {
                        self.dram_write_transactions += 1;
                    }
                }
            }
        }
        // Advance the interleaving clocks by the lines this instruction
        // inserted into each level — the unit the retention model is
        // calibrated in. A normal instruction stands for `interleave`
        // instructions of the round-robin schedule (each co-resident warp
        // inserting a similar amount); burst rows run back to back with
        // nothing interleaved, so they advance by their own insertions only.
        if burst {
            l1.tick(l1_inserted);
            l2.tick(l2_inserted);
        } else {
            l1.tick(self.interleave * l1_inserted);
            // The L2 absorbs traffic from every SM concurrently.
            l2.tick(self.l2_interleave * l2_inserted);
        }
        worst
    }

    /// One warp load instruction: `out[lane] = s[idx[lane]]` for active lanes.
    pub fn load(&mut self, s: DSlice, idx: &Lanes, mask: u32) -> Lanes {
        self.instructions += 1;
        let (mask, worst) = self.access(s, idx, mask, AccessOp::Load, false);
        self.stall += worst;
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                out[lane] = self.mem.word(s.addr(idx[lane] as u64));
            }
        }
        out
    }

    /// One warp store instruction: `s[idx[lane]] = vals[lane]`.
    pub fn store(&mut self, s: DSlice, idx: &Lanes, vals: &Lanes, mask: u32) {
        self.instructions += 1;
        let (mask, _) = self.access(s, idx, mask, AccessOp::Store, false);
        // Stores retire through the write queue; charge issue cost only.
        self.stall += self.cfg.burst_issue;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                self.mem.set_word(s.addr(idx[lane] as u64), vals[lane]);
            }
        }
    }

    /// Elements one vectorized burst instruction covers per lane (an
    /// `LDG.128` on hardware: four consecutive `u32`s).
    pub const BURST_VEC: u32 = 4;

    /// Burst load: each active lane reads `count[lane]` consecutive elements
    /// starting at `start[lane]` — the unrolled Shared-Memory-Prefetch
    /// access shape. Row `r` of the result holds each lane's `r`-th element
    /// (0 where `r >= count[lane]`).
    ///
    /// Because the unrolled loop makes per-lane addresses consecutive and
    /// statically known, the compiler emits **vectorized** 16-byte loads:
    /// each instruction covers [`Self::BURST_VEC`] rows, so a K-element
    /// prefetch issues `K/4` load transactions' worth of sector requests
    /// instead of `K` — the "global memory read transactions" reduction of
    /// the paper's Fig. 7. Groups issue back to back: the first pays its
    /// miss latency, later ones the pipelined issue cost, and the
    /// interleaving clock advances only by the burst's own insertions so
    /// sector reuse inside the burst survives.
    pub fn load_burst(&mut self, s: DSlice, start: &Lanes, count: &Lanes, mask: u32) -> Vec<Lanes> {
        let mask = match self.san.as_deref_mut() {
            Some(san) => {
                let ok = san.pre_burst(self.id, s, start, count, mask);
                san.burst_access(self.id, s, start, count, ok, self.mem);
                ok
            }
            None => mask,
        };
        let rows = (0..WARP_SIZE)
            .filter(|&l| (mask >> l) & 1 == 1)
            .map(|l| count[l])
            .max()
            .unwrap_or(0);
        let mut out = vec![[0u32; WARP_SIZE]; rows as usize];
        let mut group_start = 0u32;
        let mut first_group = true;
        while group_start < rows {
            let group_end = (group_start + Self::BURST_VEC).min(rows);
            // One vectorized instruction: coalesce every active (lane, row)
            // address in the group together.
            self.instructions += 1;
            let active = (0..WARP_SIZE)
                .filter(|&l| (mask >> l) & 1 == 1 && count[l] > group_start)
                .count() as u32;
            self.count_lanes(active);
            // Record mode keeps raw word addresses (stage 2 coalesces them
            // later); the direct path pushes sector IDs as before.
            let record = matches!(self.route, Route::Record { .. });
            self.sector_scratch.clear();
            let mut any = false;
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 != 1 {
                    continue;
                }
                for r in group_start..group_end.min(count[lane]) {
                    let addr = s.addr((start[lane] + r) as u64);
                    self.sector_scratch
                        .push(if record { addr } else { addr / 8 });
                    out[r as usize][lane] = self.mem.word(addr);
                    any = true;
                }
            }
            if any {
                if record {
                    // The first non-empty group charges its worst sector
                    // latency once the drain stages know it; later groups
                    // pay the pipelined issue cost right here.
                    if let Route::Record { sm, queue, order } = &mut self.route {
                        let addr_start = queue.addrs.len();
                        queue.addrs.extend_from_slice(&self.sector_scratch);
                        queue.commit(s.region, PipeOp::Load, true, first_group, addr_start);
                        order.push(*sm);
                    }
                    if first_group {
                        first_group = false;
                    } else {
                        self.stall += self.cfg.burst_issue;
                    }
                } else {
                    self.sector_scratch.sort_unstable();
                    self.sector_scratch.dedup();
                    let worst = self.probe_scratch_sectors(s, AccessOp::Load, true);
                    if first_group {
                        self.stall += worst;
                        first_group = false;
                    } else {
                        self.stall += self.cfg.burst_issue;
                    }
                }
            }
            group_start = group_end;
        }
        out
    }

    /// Lane-serialized atomic add at L2: returns each lane's old value.
    /// Lanes apply in lane order, so same-address adds see prior lanes.
    pub fn atomic_add(&mut self, s: DSlice, idx: &Lanes, delta: &Lanes, mask: u32) -> Lanes {
        self.instructions += 1;
        let (mask, _) = self.access(s, idx, mask, AccessOp::Atomic, false);
        let active = mask.count_ones() as u64;
        self.stall += self.cfg.l2_latency + active * self.cfg.atomic_serialize;
        self.atomics += active;
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let addr = s.addr(idx[lane] as u64);
                let old = self.mem.word(addr);
                out[lane] = old;
                self.mem.set_word(addr, old.wrapping_add(delta[lane]));
            }
        }
        out
    }

    /// Lane-serialized atomic min at L2: returns each lane's old value.
    pub fn atomic_min(&mut self, s: DSlice, idx: &Lanes, val: &Lanes, mask: u32) -> Lanes {
        self.instructions += 1;
        let (mask, _) = self.access(s, idx, mask, AccessOp::Atomic, false);
        let active = mask.count_ones() as u64;
        self.stall += self.cfg.l2_latency + active * self.cfg.atomic_serialize;
        self.atomics += active;
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let addr = s.addr(idx[lane] as u64);
                let old = self.mem.word(addr);
                out[lane] = old;
                if val[lane] < old {
                    self.mem.set_word(addr, val[lane]);
                }
            }
        }
        out
    }

    /// Lane-serialized atomic OR at L2 (`atomicOr`) — the primitive behind
    /// bitmask frontiers (iBFS-style concurrent traversals). Returns old
    /// values; lanes apply in lane order.
    pub fn atomic_or(&mut self, s: DSlice, idx: &Lanes, val: &Lanes, mask: u32) -> Lanes {
        self.instructions += 1;
        let (mask, _) = self.access(s, idx, mask, AccessOp::Atomic, false);
        let active = mask.count_ones() as u64;
        self.stall += self.cfg.l2_latency + active * self.cfg.atomic_serialize;
        self.atomics += active;
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let addr = s.addr(idx[lane] as u64);
                let old = self.mem.word(addr);
                out[lane] = old;
                self.mem.set_word(addr, old | val[lane]);
            }
        }
        out
    }

    /// Lane-serialized atomic float add at L2 (`atomicAdd(float*)`),
    /// interpreting the device words as IEEE-754 `f32` bits. Used by
    /// accumulation workloads (PageRank's rank scatter). Returns old values.
    pub fn atomic_add_f32(
        &mut self,
        s: DSlice,
        idx: &Lanes,
        val: &[f32; WARP_SIZE],
        mask: u32,
    ) -> [f32; WARP_SIZE] {
        self.instructions += 1;
        let (mask, _) = self.access(s, idx, mask, AccessOp::Atomic, false);
        let active = mask.count_ones() as u64;
        self.stall += self.cfg.l2_latency + active * self.cfg.atomic_serialize;
        self.atomics += active;
        let mut out = [0f32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let addr = s.addr(idx[lane] as u64);
                let old = f32::from_bits(self.mem.word(addr));
                out[lane] = old;
                self.mem.set_word(addr, (old + val[lane]).to_bits());
            }
        }
        out
    }

    /// Lane-serialized atomic max at L2 (SSWP's widest-path update).
    pub fn atomic_max(&mut self, s: DSlice, idx: &Lanes, val: &Lanes, mask: u32) -> Lanes {
        self.instructions += 1;
        let (mask, _) = self.access(s, idx, mask, AccessOp::Atomic, false);
        let active = mask.count_ones() as u64;
        self.stall += self.cfg.l2_latency + active * self.cfg.atomic_serialize;
        self.atomics += active;
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let addr = s.addr(idx[lane] as u64);
                let old = self.mem.word(addr);
                out[lane] = old;
                if val[lane] > old {
                    self.mem.set_word(addr, val[lane]);
                }
            }
        }
        out
    }

    // ---- shared memory -----------------------------------------------------

    /// Shared-memory load: `out[lane] = shared[idx[lane]]`.
    pub fn load_shared(&mut self, idx: &Lanes, mask: u32) -> Lanes {
        self.instructions += 1;
        self.shared_accesses += 1;
        self.stall += self.cfg.shared_latency;
        let mask = match self.san.as_deref_mut() {
            Some(san) => san.shared_access(self.id, AccessKind::Load, self.shared.len(), idx, mask),
            None => mask,
        };
        self.count_lanes(mask.count_ones());
        self.shared_bank_conflicts += bank_conflicts(idx, mask);
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                out[lane] = self.shared[idx[lane] as usize];
            }
        }
        out
    }

    /// Shared-memory store: `shared[idx[lane]] = vals[lane]`.
    pub fn store_shared(&mut self, idx: &Lanes, vals: &Lanes, mask: u32) {
        self.instructions += 1;
        self.shared_accesses += 1;
        self.stall += self.cfg.shared_latency;
        let mask = match self.san.as_deref_mut() {
            Some(san) => {
                san.shared_access(self.id, AccessKind::Store, self.shared.len(), idx, mask)
            }
            None => mask,
        };
        self.count_lanes(mask.count_ones());
        self.shared_bank_conflicts += bank_conflicts(idx, mask);
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                self.shared[idx[lane] as usize] = vals[lane];
            }
        }
    }
}

/// Shared-memory bank-conflict replays for one warp access: shared memory
/// has 32 word-wide banks (`word % 32`); lanes addressing *different* words
/// in the same bank serialize, while lanes reading the same word broadcast.
/// Returns `Σ_banks (distinct words in bank − 1)` over active lanes.
fn bank_conflicts(idx: &Lanes, mask: u32) -> u64 {
    let mut pairs = [(0u32, 0u32); WARP_SIZE];
    let mut n = 0usize;
    for lane in 0..WARP_SIZE {
        if (mask >> lane) & 1 == 1 {
            pairs[n] = (idx[lane] % 32, idx[lane]);
            n += 1;
        }
    }
    let pairs = &mut pairs[..n];
    pairs.sort_unstable();
    let mut conflicts = 0u64;
    let mut i = 0usize;
    while i < pairs.len() {
        let bank = pairs[i].0;
        let mut distinct = 0u64;
        let mut last: Option<u32> = None;
        while i < pairs.len() && pairs[i].0 == bank {
            if last != Some(pairs[i].1) {
                distinct += 1;
                last = Some(pairs[i].1);
            }
            i += 1;
        }
        conflicts += distinct.saturating_sub(1);
    }
    conflicts
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AccessOp {
    Load,
    Store,
    Atomic,
}

impl AccessOp {
    fn kind(self) -> AccessKind {
        match self {
            AccessOp::Load => AccessKind::Load,
            AccessOp::Store => AccessKind::Store,
            AccessOp::Atomic => AccessKind::Atomic,
        }
    }

    fn pipe(self) -> PipeOp {
        match self {
            AccessOp::Load => PipeOp::Load,
            AccessOp::Store => PipeOp::Store,
            AccessOp::Atomic => PipeOp::Atomic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use eta_mem::pcie::PcieLink;

    struct Rig {
        cfg: GpuConfig,
        mem: MemSystem,
        l1: Cache,
        l2: Cache,
        shared: Vec<u32>,
    }

    impl Rig {
        fn new() -> Self {
            let cfg = GpuConfig::default_preset();
            let mem = MemSystem::new(cfg.device_mem_bytes, PcieLink::new(12.0, 8000));
            Rig {
                cfg,
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
                shared: vec![0; 4096],
                mem,
            }
        }

        fn warp(&mut self, interleave: u64) -> WarpCtx<'_> {
            WarpCtx::new(
                &self.cfg,
                &mut self.mem,
                &mut self.l1,
                &mut self.l2,
                &mut self.shared,
                WarpId {
                    block: 0,
                    warp_in_block: 0,
                    threads_per_block: 256,
                    grid_blocks: 1,
                },
                interleave,
                interleave,
                0,
                None,
            )
        }
    }

    fn iota() -> Lanes {
        let mut l = [0u32; WARP_SIZE];
        for (i, s) in l.iter_mut().enumerate() {
            *s = i as u32;
        }
        l
    }

    #[test]
    fn bank_conflict_counting() {
        // Coalesced iota: every lane in its own bank — no conflicts.
        assert_eq!(bank_conflicts(&iota(), FULL_MASK), 0);
        // All 32 lanes read the same word: broadcast, free.
        assert_eq!(bank_conflicts(&[7u32; WARP_SIZE], FULL_MASK), 0);
        // Stride 32: every lane a distinct word in bank 0 — 31 replays.
        let mut stride = [0u32; WARP_SIZE];
        for (i, s) in stride.iter_mut().enumerate() {
            *s = (i as u32) * 32;
        }
        assert_eq!(bank_conflicts(&stride, FULL_MASK), 31);
        // Inactive lanes are ignored: only lanes 0 and 1 active, same bank,
        // different words — one replay.
        assert_eq!(bank_conflicts(&stride, 0b11), 1);
        assert_eq!(bank_conflicts(&stride, 0), 0);
    }

    #[test]
    fn shared_access_counts_lanes_and_conflicts() {
        let mut rig = Rig::new();
        let mut w = rig.warp(1);
        let vals = iota();
        w.store_shared(&iota(), &vals, FULL_MASK);
        let out = w.load_shared(&iota(), FULL_MASK);
        assert_eq!(out, vals);
        let mut m = KernelMetrics::default();
        w.finish(&mut m);
        assert_eq!(m.shared_bank_conflicts, 0, "iota is conflict-free");
        assert_eq!(m.lane_ops, 64, "two full-warp shared instructions");
        assert_eq!(m.lane_slots, 64);
        assert!((m.warp_execution_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thread_ids_and_masks() {
        let mut rig = Rig::new();
        let w = rig.warp(1);
        let ids = w.thread_ids();
        assert_eq!(ids[0], 0);
        assert_eq!(ids[31], 31);
        assert_eq!(w.mask_for_items(0), 0);
        assert_eq!(w.mask_for_items(1), 1);
        assert_eq!(w.mask_for_items(32), FULL_MASK);
        assert_eq!(w.mask_for_items(5), 0b11111);
    }

    #[test]
    fn load_returns_stored_values() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        rig.mem
            .host_write(a, 0, &(0..64).map(|i| i * 10).collect::<Vec<_>>());
        let mut w = rig.warp(1);
        let vals = w.load(a, &iota(), FULL_MASK);
        assert_eq!(vals[0], 0);
        assert_eq!(vals[7], 70);
        assert_eq!(vals[31], 310);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut w = rig.warp(1);
        let vals = {
            let mut v = [0u32; WARP_SIZE];
            for (i, s) in v.iter_mut().enumerate() {
                *s = (i * i) as u32;
            }
            v
        };
        w.store(a, &iota(), &vals, FULL_MASK);
        let back = w.load(a, &iota(), FULL_MASK);
        assert_eq!(back, vals);
    }

    #[test]
    fn masked_lanes_do_not_write() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut w = rig.warp(1);
        w.store(a, &iota(), &[7; WARP_SIZE], 0b1010);
        drop(w);
        assert_eq!(rig.mem.host_read(a, 0, 4), &[0, 7, 0, 7]);
    }

    #[test]
    fn coalesced_load_touches_four_sectors() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut w = rig.warp(1);
        w.load(a, &iota(), FULL_MASK);
        drop(w);
        assert_eq!(rig.l1.stats().accesses(), 4, "32 u32 lanes = 4 sectors");
    }

    #[test]
    fn scattered_load_touches_32_sectors() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(32 * 64).unwrap();
        let mut idx = [0u32; WARP_SIZE];
        for (i, s) in idx.iter_mut().enumerate() {
            *s = (i * 64) as u32;
        }
        let mut w = rig.warp(1);
        w.load(a, &idx, FULL_MASK);
        drop(w);
        assert_eq!(rig.l1.stats().accesses(), 32);
    }

    #[test]
    fn burst_preserves_sector_reuse_under_interleave() {
        // The SMP mechanism: with heavy interleaving, a per-iteration loop
        // loses its sectors between accesses, a burst does not.
        let k = 8u32;
        let stride = 8u32; // one sector per lane-range
        let len = 32 * stride;

        // Loop-style: K separate loads with a huge interleave factor.
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(len as u64).unwrap();
        {
            let mut w = rig.warp(100_000);
            for r in 0..k {
                let mut idx = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    idx[lane] = lane as u32 * stride + r;
                }
                w.load(a, &idx, FULL_MASK);
            }
        }
        let loop_misses = rig.l1.stats().misses;

        // Burst-style: same addresses as one burst.
        let mut rig2 = Rig::new();
        let b = rig2.mem.alloc_explicit(len as u64).unwrap();
        {
            let mut w = rig2.warp(100_000);
            let mut start = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                start[lane] = lane as u32 * stride;
            }
            w.load_burst(b, &start, &[k; WARP_SIZE], FULL_MASK);
        }
        let burst_misses = rig2.l1.stats().misses;

        assert_eq!(burst_misses, 32, "one miss per lane's sector");
        assert!(
            loop_misses >= 4 * burst_misses,
            "interleaved loop must thrash: {loop_misses} vs {burst_misses}"
        );
    }

    #[test]
    fn burst_values_and_row_masks() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(256).unwrap();
        rig.mem.host_write(a, 0, &(0..256).collect::<Vec<u32>>());
        let mut w = rig.warp(1);
        let mut start = [0u32; WARP_SIZE];
        let mut count = [0u32; WARP_SIZE];
        start[0] = 10;
        count[0] = 3;
        start[1] = 100;
        count[1] = 1;
        let rows = w.load_burst(a, &start, &count, 0b11);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], 10);
        assert_eq!(rows[1][0], 11);
        assert_eq!(rows[2][0], 12);
        assert_eq!(rows[0][1], 100);
        assert_eq!(rows[1][1], 0, "lane 1 inactive past its count");
    }

    #[test]
    fn atomic_add_serializes_same_address() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        let mut w = rig.warp(1);
        let olds = w.atomic_add(a, &[0; WARP_SIZE], &[1; WARP_SIZE], FULL_MASK);
        // Lane i must observe i prior increments.
        for (lane, &old) in olds.iter().enumerate() {
            assert_eq!(old, lane as u32);
        }
        drop(w);
        assert_eq!(rig.mem.host_read(a, 0, 1), &[32]);
    }

    #[test]
    fn atomic_min_keeps_smallest() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        rig.mem.host_write(a, 0, &[100]);
        let mut w = rig.warp(1);
        let mut vals = [0u32; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = 50 + i as u32;
        }
        let old = w.atomic_min(a, &[0; WARP_SIZE], &vals, 0b11);
        assert_eq!(old[0], 100);
        assert_eq!(old[1], 50, "lane 1 sees lane 0's update");
        drop(w);
        assert_eq!(rig.mem.host_read(a, 0, 1), &[50]);
    }

    #[test]
    fn atomic_max_keeps_largest() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        rig.mem.host_write(a, 0, &[5]);
        let mut w = rig.warp(1);
        let old = w.atomic_max(a, &[0; WARP_SIZE], &[9; WARP_SIZE], 0b1);
        assert_eq!(old[0], 5);
        drop(w);
        assert_eq!(rig.mem.host_read(a, 0, 1), &[9]);
    }

    #[test]
    fn atomic_or_merges_bits_in_lane_order() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        let mut w = rig.warp(1);
        let mut bits = [0u32; WARP_SIZE];
        bits[0] = 0b001;
        bits[1] = 0b010;
        bits[2] = 0b100;
        let olds = w.atomic_or(a, &[0; WARP_SIZE], &bits, 0b111);
        assert_eq!(olds[0], 0);
        assert_eq!(olds[1], 0b001, "lane 1 sees lane 0's bit");
        assert_eq!(olds[2], 0b011);
        drop(w);
        assert_eq!(rig.mem.host_read(a, 0, 1), &[0b111]);
    }

    #[test]
    fn atomic_add_f32_accumulates_and_returns_olds() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        rig.mem.host_write(a, 0, &[1.5f32.to_bits()]);
        let mut w = rig.warp(1);
        let olds = w.atomic_add_f32(a, &[0; WARP_SIZE], &[0.25f32; WARP_SIZE], 0b111);
        assert_eq!(olds[0], 1.5);
        assert_eq!(olds[1], 1.75);
        assert_eq!(olds[2], 2.0);
        drop(w);
        assert_eq!(f32::from_bits(rig.mem.host_read(a, 0, 1)[0]), 2.25);
    }

    #[test]
    fn atomic_add_f32_masked_lanes_do_nothing() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        let mut w = rig.warp(1);
        w.atomic_add_f32(a, &[0; WARP_SIZE], &[7.0; WARP_SIZE], 0);
        drop(w);
        assert_eq!(f32::from_bits(rig.mem.host_read(a, 0, 1)[0]), 0.0);
    }

    #[test]
    fn mask_zero_ops_issue_no_transactions_and_no_metric_drift() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut metrics = KernelMetrics::default();
        {
            let mut w = rig.warp(1);
            let vals = w.load(a, &iota(), 0);
            assert_eq!(vals, [0u32; WARP_SIZE]);
            w.store(a, &iota(), &[9; WARP_SIZE], 0);
            w.atomic_add(a, &[0; WARP_SIZE], &[1; WARP_SIZE], 0);
            let (instr, _) = w.finish(&mut metrics);
            assert_eq!(instr, 3, "instructions still issue");
        }
        assert_eq!(rig.l1.stats().accesses(), 0, "no sectors reach L1");
        assert_eq!(rig.l2.stats().accesses(), 0);
        assert_eq!(metrics.l1_requests, 0);
        assert_eq!(metrics.atomics, 0);
        assert_eq!(metrics.dram_transactions, 0);
        assert_eq!(metrics.dram_write_transactions, 0);
        assert_eq!(
            rig.mem.host_read(a, 0, 4),
            &[0, 0, 0, 0],
            "no writes landed"
        );
    }

    #[test]
    fn mask_zero_burst_is_a_noop() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut metrics = KernelMetrics::default();
        {
            let mut w = rig.warp(1);
            let rows = w.load_burst(a, &[0; WARP_SIZE], &[4; WARP_SIZE], 0);
            assert!(rows.is_empty(), "no active lane, no rows");
            let (instr, stall) = w.finish(&mut metrics);
            assert_eq!(instr, 0, "a fully-masked burst issues nothing");
            assert_eq!(stall, 0);
        }
        assert_eq!(rig.l1.stats().accesses(), 0);
        assert_eq!(metrics.dram_transactions, 0);
    }

    #[test]
    fn zero_count_burst_issues_nothing() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut w = rig.warp(1);
        let rows = w.load_burst(a, &iota(), &[0; WARP_SIZE], FULL_MASK);
        assert!(rows.is_empty(), "count 0 on every lane, no rows");
        drop(w);
        assert_eq!(rig.l1.stats().accesses(), 0);
    }

    #[test]
    fn atomic_add_f32_serializes_in_lane_order_under_sparse_mask() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(8).unwrap();
        rig.mem.host_write(a, 0, &[0f32.to_bits()]);
        let mut w = rig.warp(1);
        let mask = (1 << 1) | (1 << 5) | (1 << 30);
        let mut vals = [0f32; WARP_SIZE];
        vals[1] = 1.0;
        vals[5] = 2.0;
        vals[30] = 4.0;
        let olds = w.atomic_add_f32(a, &[0; WARP_SIZE], &vals, mask);
        assert_eq!(olds[1], 0.0, "lowest active lane applies first");
        assert_eq!(olds[5], 1.0, "lane 5 sees lane 1's add");
        assert_eq!(olds[30], 3.0, "lane 30 sees lanes 1 and 5");
        assert_eq!(olds[0], 0.0, "inactive lanes return the default");
        drop(w);
        assert_eq!(f32::from_bits(rig.mem.host_read(a, 0, 1)[0]), 7.0);
    }

    #[test]
    fn shared_memory_roundtrip_and_no_global_traffic() {
        let mut rig = Rig::new();
        let mut w = rig.warp(1);
        let vals = iota();
        w.store_shared(&iota(), &vals, FULL_MASK);
        let back = w.load_shared(&iota(), FULL_MASK);
        assert_eq!(back, vals);
        drop(w);
        assert_eq!(rig.l1.stats().accesses(), 0);
        assert_eq!(rig.l2.stats().accesses(), 0);
    }

    #[test]
    fn finish_reports_counters() {
        let mut rig = Rig::new();
        let a = rig.mem.alloc_explicit(64).unwrap();
        let mut metrics = KernelMetrics::default();
        let mut w = rig.warp(1);
        w.load(a, &iota(), FULL_MASK);
        w.alu(3);
        let (instr, stall) = w.finish(&mut metrics);
        assert_eq!(instr, 4);
        assert!(stall > 0);
        assert_eq!(metrics.instructions, 4);
        assert_eq!(metrics.warps, 1);
    }
}
