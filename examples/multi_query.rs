//! Warm multi-query serving: one resident graph, many traversal queries —
//! the concurrent-query setting of Congra (Pan & Li, ICCD'17), which the
//! paper cites as motivation. A `Session` uploads the topology once; every
//! query after the first pays only its own labels and kernels.
//!
//! ```text
//! cargo run --release --example multi_query
//! ```

use eta_graph::generate::{rmat, RmatConfig};
use etagraph::session::Session;
use etagraph::{Algorithm, EtaConfig};

fn main() {
    let graph = rmat(&RmatConfig::paper(15, 500_000, 11)).with_random_weights(3, 64);
    println!(
        "graph: {} vertices, {} edges ({} MB topology)",
        graph.n(),
        graph.m(),
        graph.topology_bytes() / (1024 * 1024)
    );

    let mut session = Session::new(&graph, EtaConfig::paper()).expect("graph fits in UM");

    // A mixed query stream, as an analytics service would see.
    let queries = [
        (Algorithm::Bfs, 0u32),
        (Algorithm::Bfs, 12345),
        (Algorithm::Sssp, 0),
        (Algorithm::Sswp, 777),
        (Algorithm::Bfs, 31000),
        (Algorithm::Sssp, 9999),
    ];

    println!(
        "\n{:<6} {:>8} {:>10} {:>12} {:>10}",
        "alg", "source", "visited", "total (ms)", "queue"
    );
    let mut bfs_ms = Vec::new();
    for (i, &(alg, src)) in queries.iter().enumerate() {
        let r = session.query(alg, src).expect("resident graph");
        let ms = r.total_ms();
        if alg == Algorithm::Bfs {
            bfs_ms.push(ms);
        }
        println!(
            "{:<6} {:>8} {:>10} {:>12.3} {:>9}{}",
            alg.name(),
            src,
            r.visited(),
            ms,
            i + 1,
            if i == 0 {
                "  <- cold (pays the upload)"
            } else {
                ""
            }
        );
    }

    // Like-for-like: the first query (cold BFS) vs the later BFS queries.
    let cold_ms = bfs_ms[0];
    let warm_avg = bfs_ms[1..].iter().sum::<f64>() / (bfs_ms.len() - 1) as f64;
    println!(
        "\ncold BFS: {cold_ms:.3} ms; warm BFS avg {warm_avg:.3} ms ({:.1}x faster)",
        cold_ms / warm_avg
    );
    println!(
        "session answered {} queries in {:.3} ms simulated",
        session.queries_run(),
        session.elapsed_ns() as f64 / 1e6
    );
    println!(
        "\nEvery per-run number in the paper's Table III pays that cold-start transfer;\n\
         a query service amortizes it across the whole stream."
    );
}
