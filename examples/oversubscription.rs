//! Processing a graph bigger than device memory — the paper's uk-2006
//! scenario. Plain `cudaMalloc` allocation fails outright; EtaGraph's
//! Unified Memory mode oversubscribes the device, migrating and evicting
//! pages on demand, and a traversal that touches only a small region barely
//! transfers anything at all.
//!
//! ```text
//! cargo run --release --example oversubscription
//! ```

use eta_graph::generate::{web, WebConfig};
use eta_sim::GpuConfig;
use etagraph::{Algorithm, EtaConfig, EtaGraph};

fn main() {
    // A deliberately small device: 28 MiB of "GPU memory".
    let gpu = GpuConfig::gtx1080ti_scaled(28 * 1024 * 1024);

    // A web crawl whose CSR exceeds what the device can hold alongside the
    // working arrays, with the query source inside a small disconnected
    // component.
    let (graph, source) = web(&WebConfig {
        vertices: 400_000,
        edges: 4_000_000,
        communities: 32,
        lcc_fraction: 0.8,
        source_island: Some(100),
        seed: 2006,
    });
    println!(
        "graph: {} vertices, {} edges, topology {:.1} MB vs device {:.1} MB",
        graph.n(),
        graph.m(),
        graph.topology_bytes() as f64 / 1e6,
        gpu.device_mem_bytes as f64 / 1e6
    );

    // 1. cudaMalloc-style placement: out of memory, as on real hardware.
    let explicit = EtaGraph::new(&graph, EtaConfig::without_um()).with_gpu(gpu);
    match explicit.run(Algorithm::Bfs, source) {
        Err(e) => println!("\n[w/o UM]  {e} — plain device allocation cannot hold the graph"),
        Ok(_) => unreachable!("the graph must not fit"),
    }

    // 2. UM demand paging: only the source island's pages ever migrate.
    let demand = EtaGraph::new(&graph, EtaConfig::without_ump()).with_gpu(gpu);
    let r = demand
        .run(Algorithm::Bfs, source)
        .expect("UM oversubscribes");
    println!(
        "\n[UM demand] visited {} of {} vertices ({:.4}% activation) in {} iterations",
        r.visited(),
        graph.n(),
        r.activation_percent(),
        r.iterations
    );
    println!(
        "            migrated {:.1} KB in {} batches, {} pages evicted, total {:.3} ms",
        r.um_stats.migrated_bytes as f64 / 1024.0,
        r.um_stats.migration_batches.len(),
        r.um_stats.evicted_pages,
        r.total_ms()
    );

    // 3. UM + prefetch: streams the whole (oversized) topology through the
    //    device — correct, but pays for data the query never needed.
    let prefetch = EtaGraph::new(&graph, EtaConfig::paper()).with_gpu(gpu);
    let p = prefetch
        .run(Algorithm::Bfs, source)
        .expect("UM oversubscribes");
    assert_eq!(p.labels, r.labels);
    println!(
        "\n[UM+UMP]    same result, but prefetched {:.1} MB and evicted {} pages: total {:.3} ms \
         ({:.0}x slower than demand paging)",
        p.um_stats.prefetched_bytes as f64 / 1e6,
        p.um_stats.evicted_pages,
        p.total_ms(),
        p.total_ns as f64 / r.total_ns as f64
    );
    println!(
        "\nThis inversion is exactly the paper's uk-2006 row of Table III: prefetching helps \
         full traversals and hurts tiny ones."
    );
}
