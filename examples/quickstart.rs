//! Quickstart: generate a small power-law graph, run BFS with EtaGraph on
//! the simulated GPU, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eta_graph::generate::{rmat, RmatConfig};
use etagraph::{Algorithm, EtaConfig, EtaGraph};

fn main() {
    // A 4K-vertex R-MAT graph with the paper's skew parameters.
    let graph = rmat(&RmatConfig::paper(12, 60_000, 42));
    println!(
        "graph: {} vertices, {} edges, max out-degree {} (avg {:.1})",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        graph.avg_degree()
    );

    // EtaGraph with the paper's defaults: Unified Degree Cut at K=16,
    // Shared Memory Prefetch, Unified Memory + prefetch hint.
    let eta = EtaGraph::new(&graph, EtaConfig::paper());
    let result = eta.run(Algorithm::Bfs, 0).expect("UM never runs out");

    println!(
        "BFS from vertex 0: visited {} vertices ({:.1}% activation) in {} iterations",
        result.visited(),
        result.activation_percent(),
        result.iterations
    );
    println!(
        "simulated time: {:.3} ms kernels, {:.3} ms total (transfer {:.0}% hidden under compute)",
        result.kernel_ms(),
        result.total_ms(),
        result.overlap_fraction * 100.0
    );
    println!(
        "kernel counters: {} warp instructions, IPC {:.2}, unified-cache hit {:.1}%, {} DRAM read transactions",
        result.metrics.instructions,
        result.metrics.ipc(),
        result.metrics.l1_hit_rate() * 100.0,
        result.metrics.dram_transactions,
    );

    // Per-iteration frontier shape (the paper's Fig. 2).
    println!("\nfrontier per iteration:");
    for s in &result.per_iteration {
        println!(
            "  iter {:>2}: {:>6} active -> {:>6} shadow tuples ({} full-K, {} tails)",
            s.iteration,
            s.active,
            s.shadow_full + s.shadow_partial,
            s.shadow_full,
            s.shadow_partial
        );
    }

    // Sanity: agree with the CPU reference.
    let reference = eta_graph::reference::bfs(&graph, 0);
    assert_eq!(result.labels, reference, "GPU result must match CPU oracle");
    println!("\nresult verified against the CPU reference");
}
