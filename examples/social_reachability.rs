//! Social-network reachability: the workload class the paper's introduction
//! motivates. Given a social graph, compute how far an influence cascade
//! starting from a seed user spreads (BFS levels = propagation rounds), and
//! compare the four frameworks on the same query.
//!
//! ```text
//! cargo run --release --example social_reachability
//! ```

use eta_baselines::{run_fresh, CushaLike, EtaFramework, Framework, GunrockLike, TigrLike};
use eta_graph::generate::{rmat, RmatConfig};
use eta_sim::GpuConfig;
use etagraph::Algorithm;

fn main() {
    // A LiveJournal-like social graph: power-law degrees, ~14 avg degree.
    let graph = rmat(&RmatConfig::paper(15, 480_000, 7));
    let seed = (0..graph.n() as u32)
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    println!(
        "social graph: {} users, {} follow edges; seeding cascade at the biggest hub (degree {})",
        graph.n(),
        graph.m(),
        graph.degree(seed)
    );

    let frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(CushaLike::default()),
        Box::new(GunrockLike::default()),
        Box::new(TigrLike::default()),
        Box::new(EtaFramework::paper()),
    ];

    let mut hop_histogram: Option<Vec<usize>> = None;
    println!(
        "\n{:<10} {:>12} {:>12} {:>6}",
        "framework", "kernel (ms)", "total (ms)", "iters"
    );
    for fw in &frameworks {
        match run_fresh(
            fw.as_ref(),
            GpuConfig::default_preset(),
            &graph,
            seed,
            Algorithm::Bfs,
        ) {
            Ok(r) => {
                println!(
                    "{:<10} {:>12.3} {:>12.3} {:>6}",
                    fw.name(),
                    r.kernel_ms(),
                    r.total_ms(),
                    r.iterations
                );
                // All frameworks must agree on the cascade.
                let hist = level_histogram(&r.labels);
                if let Some(prev) = &hop_histogram {
                    assert_eq!(prev, &hist, "{} disagrees", fw.name());
                } else {
                    hop_histogram = Some(hist);
                }
            }
            Err(e) => println!("{:<10} {e}", fw.name()),
        }
    }

    let hist = hop_histogram.expect("at least one framework ran");
    let reached: usize = hist.iter().sum();
    println!(
        "\ncascade reach: {} of {} users ({:.1}%)",
        reached,
        graph.n(),
        100.0 * reached as f64 / graph.n() as f64
    );
    println!("users first reached per propagation round:");
    for (hop, count) in hist.iter().enumerate() {
        let bar = "#".repeat((count * 50 / reached.max(1)).min(50));
        println!("  round {hop:>2}: {count:>7}  {bar}");
    }
}

fn level_histogram(labels: &[u32]) -> Vec<usize> {
    let max = labels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let mut hist = vec![0usize; max as usize + 1];
    for &l in labels {
        if l != u32::MAX {
            hist[l as usize] += 1;
        }
    }
    hist
}
