//! Weighted traversal on a network topology: SSSP finds lowest-latency
//! routes, SSWP (widest path) finds maximum-bottleneck-bandwidth routes —
//! the two weighted algorithms the paper evaluates, on one graph.
//!
//! Also demonstrates the Shared Memory Prefetch ablation on weighted
//! traversal, where the kernel stages both neighbor IDs *and* edge weights
//! into shared memory.
//!
//! ```text
//! cargo run --release --example weighted_routing
//! ```

use eta_graph::generate::{web, WebConfig};
use eta_graph::reference;
use etagraph::{Algorithm, EtaConfig, EtaGraph};

fn main() {
    // A hub-and-bridge "backbone" network with link metrics in 1..=64.
    let (topology, source) = web(&WebConfig {
        vertices: 60_000,
        edges: 900_000,
        communities: 24,
        lcc_fraction: 0.95,
        source_island: None,
        seed: 99,
    });
    let network = topology.with_random_weights(7, 64);
    println!(
        "network: {} routers, {} links, querying routes from router {source}",
        network.n(),
        network.m()
    );

    // Lowest-latency routes (SSSP).
    let eta = EtaGraph::new(&network, EtaConfig::paper());
    let sssp = eta.run(Algorithm::Sssp, source).expect("runs in UM");
    assert_eq!(sssp.labels, reference::sssp(&network, source));
    let reachable: Vec<u32> = sssp
        .labels
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .collect();
    let worst = reachable.iter().max().copied().unwrap_or(0);
    let avg =
        reachable.iter().map(|&d| d as u64).sum::<u64>() as f64 / reachable.len().max(1) as f64;
    println!(
        "SSSP: {} reachable routers, avg latency {:.1}, worst {} ({} iterations, {:.3} ms simulated)",
        reachable.len(),
        avg,
        worst,
        sssp.iterations,
        sssp.total_ms()
    );

    // Maximum-bottleneck-bandwidth routes (SSWP).
    let sswp = eta.run(Algorithm::Sswp, source).expect("runs in UM");
    assert_eq!(sswp.labels, reference::sswp(&network, source));
    let widths: Vec<u32> = sswp
        .labels
        .iter()
        .copied()
        .filter(|&w| w != 0 && w != u32::MAX)
        .collect();
    let narrowest = widths.iter().min().copied().unwrap_or(0);
    println!(
        "SSWP: bottleneck bandwidth ranges {}..{} across {} routers ({} iterations)",
        narrowest,
        widths.iter().max().copied().unwrap_or(0),
        widths.len(),
        sswp.iterations
    );

    // SMP ablation on the weighted kernel: IDs + weights staged in shared
    // memory vs the load-one-neighbor-at-a-time loop.
    let no_smp = EtaGraph::new(&network, EtaConfig::without_smp());
    let plain = no_smp.run(Algorithm::Sssp, source).expect("runs in UM");
    assert_eq!(plain.labels, sssp.labels);
    println!(
        "\nSMP ablation on SSSP: {:.3} ms kernels with SMP vs {:.3} ms without ({:.2}x), \
         global read transactions {:.2}x",
        sssp.kernel_ms(),
        plain.kernel_ms(),
        plain.kernel_ms() / sssp.kernel_ms(),
        sssp.metrics.l1_requests as f64 / plain.metrics.l1_requests as f64,
    );
}
