//! Umbrella crate for the EtaGraph reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). The actual functionality lives in the `crates/*`
//! members; see README.md for the map.

pub use eta_baselines as baselines;
pub use eta_graph as graph;
pub use eta_mem as mem;
pub use eta_par as par;
pub use eta_sim as sim;
pub use etagraph as core;
