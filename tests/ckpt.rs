//! Checkpoint/resume contract tests, spanning eta-ckpt → core engines →
//! serve's recovery ladder.
//!
//! Three properties anchor the subsystem:
//!
//! 1. **Checkpointing is result-inert.** A traversal that emits snapshots
//!    produces the same answer as one that never heard of checkpoints —
//!    which is what lets the hooks live inside the hot loops permanently.
//! 2. **Rung 0 saves real work.** Under a mid-traversal hang, the
//!    checkpointed recovery ladder resumes (instead of restarting) and
//!    finishes strictly earlier than the restart-from-scratch ladder on
//!    the identical trace and fault plan.
//! 3. **Recovery with checkpoints stays deterministic and lossless** for
//!    arbitrary seeded plans: every request accounted for, byte-identical
//!    reports across reruns.

use eta_fault::{FaultPlan, HangFault};
use eta_graph::generate::{rmat, RmatConfig};
use eta_graph::reference;
use eta_serve::{poisson_trace, GraphRegistry, ServeConfig, Service, WorkloadConfig};
use proptest::prelude::*;

fn registry() -> GraphRegistry {
    let mut reg = GraphRegistry::new();
    reg.insert("g", rmat(&RmatConfig::paper(10, 8_000, 1)));
    reg
}

fn trace(reg: &GraphRegistry, requests: u32) -> Vec<eta_serve::Request> {
    poisson_trace(
        reg,
        &["g".to_string()],
        &WorkloadConfig {
            requests,
            seed: 7,
            rate_per_s: 20_000.0,
            ..WorkloadConfig::default()
        },
    )
}

/// The acceptance scenario end-to-end: a mid-traversal hang (the 50 µs
/// budget passes small-frontier kernels and kills the peak one),
/// checkpoint interval 2. The checkpointed ladder must resume with work
/// saved and beat the restart-from-scratch ladder's makespan on the
/// identical inputs — and still answer every query correctly.
#[test]
fn checkpointed_ladder_beats_restart_from_scratch_end_to_end() {
    let reg = registry();
    let t = trace(&reg, 12);
    let hang = |end_ns| FaultPlan {
        hangs: vec![HangFault {
            device: 0,
            start_ns: 0,
            end_ns,
            budget_ns: 50_000,
        }],
        ..FaultPlan::default()
    };
    let run = |plan: &FaultPlan, interval: u32| {
        Service::new(
            &reg,
            ServeConfig {
                devices: 2,
                faults: plan.clone(),
                checkpoint_interval: interval,
                ..ServeConfig::default()
            },
        )
        .run(&t)
    };
    // Probe with a permanent window to learn the deterministic fail time,
    // then bound the window just past it: the first peak-frontier launch
    // still dies mid-traversal, but the post-backoff re-probe runs clean.
    // (Under a *permanent* hang the snapshot can never complete on the
    // faulty device either, so both ladders end at the CPU fallback and
    // the comparison would measure nothing.)
    let probe = run(&hang(u64::MAX), 2);
    let fail_at = probe.fault_events.first().expect("probe must fault").at_ns;
    let plan = hang(fail_at + 1);
    let scratch = run(&plan, 0);
    let ckpt = run(&plan, 2);

    assert_eq!(ckpt.completed + ckpt.rejected, 12, "nothing lost");
    assert!(ckpt.resumes > 0, "the hang must trigger rung 0");
    assert!(
        ckpt.work_saved_iterations > 0,
        "resume restores paid-for work"
    );
    assert_eq!(scratch.resumes, 0, "interval 0 = the old ladder");
    assert!(
        ckpt.makespan_ns < scratch.makespan_ns,
        "resume ({}) must strictly beat restart-from-scratch ({})",
        ckpt.makespan_ns,
        scratch.makespan_ns
    );
    // Every completed answer still matches the CPU reference.
    for r in &ckpt.records {
        let expect = eta_ckpt::digest_words(&[&reference::bfs(reg.get("g").unwrap(), r.source)]);
        assert_eq!(r.levels_digest, expect, "request {} answered wrong", r.id);
    }
}

/// Checkpointing with no faults is pure overhead bookkeeping: same
/// answers, snapshots taken, none consumed.
#[test]
fn checkpointing_without_faults_changes_no_answer() {
    let reg = registry();
    let t = trace(&reg, 10);
    let run = |interval: u32| {
        Service::new(
            &reg,
            ServeConfig {
                devices: 1,
                checkpoint_interval: interval,
                ..ServeConfig::default()
            },
        )
        .run(&t)
    };
    let off = run(0);
    let on = run(2);
    assert!(on.checkpoints > 0);
    assert_eq!(on.resumes, 0);
    assert_eq!(off.completed, on.completed);
    let digests = |r: &eta_serve::ServeReport| {
        let mut d: Vec<(u32, u64)> = r.records.iter().map(|x| (x.id, x.levels_digest)).collect();
        d.sort_unstable();
        d
    };
    assert_eq!(
        digests(&off),
        digests(&on),
        "answers are interval-invariant"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seeded plan and interval, the checkpointed service loses
    /// nothing and reruns byte-identically.
    #[test]
    fn checkpointed_recovery_is_lossless_and_deterministic(
        seed in any::<u64>(),
        interval in 0u32..5,
    ) {
        let reg = registry();
        let t = trace(&reg, 8);
        let plan = FaultPlan::seeded(seed, 2, 50_000_000);
        let run = || {
            Service::new(
                &reg,
                ServeConfig {
                    devices: 2,
                    faults: plan.clone(),
                    checkpoint_interval: interval,
                    ..ServeConfig::default()
                },
            )
            .run(&t)
        };
        let a = run();
        prop_assert_eq!(a.completed + a.rejected, 8, "every request accounted for");
        let b = run();
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "reruns must be byte-identical"
        );
    }
}
