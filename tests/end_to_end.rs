//! End-to-end integration tests across the workspace: datasets → device
//! placement → kernels → results, validated against the CPU references.

use eta_baselines::{run_fresh, CushaLike, EtaFramework, Framework, GunrockLike, TigrLike};
use eta_graph::generate::{rmat, web, RmatConfig, WebConfig};
use eta_graph::{analysis, reference};
use eta_sim::GpuConfig;
use etagraph::{Algorithm, EtaConfig, EtaGraph};

fn frameworks() -> Vec<Box<dyn Framework>> {
    vec![
        Box::new(CushaLike::default()),
        Box::new(GunrockLike::default()),
        Box::new(TigrLike::default()),
        Box::new(EtaFramework::paper()),
        Box::new(EtaFramework::without_ump()),
    ]
}

#[test]
fn all_frameworks_agree_on_all_algorithms() {
    let g = rmat(&RmatConfig::paper(12, 60_000, 2024)).with_random_weights(3, 48);
    let src = 0u32;
    let oracles = [
        (Algorithm::Bfs, reference::bfs(&g, src)),
        (Algorithm::Sssp, reference::sssp(&g, src)),
        (Algorithm::Sswp, reference::sswp(&g, src)),
    ];
    for fw in frameworks() {
        for (alg, expect) in &oracles {
            let r = run_fresh(fw.as_ref(), GpuConfig::default_preset(), &g, src, *alg)
                .unwrap_or_else(|e| panic!("{} {} failed: {e}", fw.name(), alg.name()));
            assert_eq!(&r.labels, expect, "{} {}", fw.name(), alg.name());
            assert!(r.total_ns >= r.kernel_ns, "{}: total < kernel", fw.name());
            assert!(r.iterations >= 1);
        }
    }
}

#[test]
fn full_runs_are_deterministic() {
    let g = rmat(&RmatConfig::paper(11, 30_000, 5)).with_random_weights(1, 16);
    let eta = EtaGraph::new(&g, EtaConfig::paper());
    let a = eta.run(Algorithm::Sssp, 3).unwrap();
    let b = eta.run(Algorithm::Sssp, 3).unwrap();
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.total_ns, b.total_ns, "timing must be reproducible");
    assert_eq!(a.metrics.instructions, b.metrics.instructions);
    assert_eq!(
        a.um_stats.migration_batches.len(),
        b.um_stats.migration_batches.len()
    );
}

#[test]
fn graph_io_roundtrip_preserves_traversal() {
    let g = rmat(&RmatConfig::paper(10, 12_000, 77)).with_random_weights(2, 8);
    let dir = std::env::temp_dir().join("etagraph-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.etag");
    eta_graph::io::save(&g, &path).unwrap();
    let loaded = eta_graph::io::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, loaded);

    let eta = EtaGraph::new(&loaded, EtaConfig::paper());
    let r = eta.run(Algorithm::Sssp, 0).unwrap();
    assert_eq!(r.labels, reference::sssp(&g, 0));
}

#[test]
fn multi_source_queries_are_independent() {
    let g = rmat(&RmatConfig::paper(11, 25_000, 13));
    let eta = EtaGraph::new(&g, EtaConfig::paper());
    for src in [0u32, 1, 17, 1000] {
        let r = eta.run(Algorithm::Bfs, src).unwrap();
        assert_eq!(r.labels, reference::bfs(&g, src), "source {src}");
    }
}

#[test]
fn web_graph_traversal_matches_reference_and_structure() {
    let (g, src) = web(&WebConfig {
        vertices: 30_000,
        edges: 200_000,
        communities: 24,
        lcc_fraction: 0.7,
        source_island: None,
        seed: 4,
    });
    let expect = reference::bfs(&g, src);
    let eta = EtaGraph::new(&g, EtaConfig::paper());
    let r = eta.run(Algorithm::Bfs, src).unwrap();
    assert_eq!(r.labels, expect);
    // Chain-of-communities: BFS needs roughly 2 iterations per community.
    assert!(
        r.iterations >= 24,
        "high-diameter web graph should need many iterations, got {}",
        r.iterations
    );
    // Reachability ≈ LCC share.
    let frac = r.visited() as f64 / g.n() as f64;
    let lcc = analysis::components(&g).lcc_fraction;
    assert!((frac - lcc).abs() < 0.1, "visited {frac} vs lcc {lcc}");
}

#[test]
fn oom_pattern_mini() {
    // A miniature of Table III's O.O.M staircase: on a device sized to ~3
    // words/edge, CuSha (≈5.5 w/e) dies, Gunrock BFS (≈1.5 w/e) lives.
    let g = rmat(&RmatConfig::paper(12, 120_000, 9));
    let bytes_per_edge = |w: f64| (g.m() as f64 * w * 4.0) as u64;
    let gpu = GpuConfig::gtx1080ti_scaled(bytes_per_edge(3.0));

    assert!(
        run_fresh(&CushaLike::default(), gpu, &g, 0, Algorithm::Bfs).is_err(),
        "CuSha must OOM at 3 words/edge"
    );
    let gunrock = run_fresh(&GunrockLike::default(), gpu, &g, 0, Algorithm::Bfs);
    assert!(gunrock.is_ok(), "Gunrock BFS fits at 3 words/edge");
    let tigr = run_fresh(&TigrLike::default(), gpu, &g, 0, Algorithm::Bfs);
    assert!(tigr.is_ok(), "Tigr BFS fits at 3 words/edge");
    // EtaGraph runs even when the device holds almost nothing.
    let tiny = GpuConfig::gtx1080ti_scaled(bytes_per_edge(1.2));
    let eta = run_fresh(&EtaFramework::paper(), tiny, &g, 0, Algorithm::Bfs);
    assert!(eta.is_ok(), "EtaGraph oversubscribes via UM");
}

#[test]
fn zero_copy_mode_works_but_is_slow() {
    let g = rmat(&RmatConfig::paper(10, 10_000, 3));
    let zc = EtaGraph::new(
        &g,
        EtaConfig {
            transfer: etagraph::TransferMode::ZeroCopy,
            ..EtaConfig::default()
        },
    );
    let um = EtaGraph::new(&g, EtaConfig::paper());
    let rz = zc.run(Algorithm::Bfs, 0).unwrap();
    let ru = um.run(Algorithm::Bfs, 0).unwrap();
    assert_eq!(rz.labels, ru.labels);
    assert!(
        rz.kernel_ns as f64 > 1.2 * ru.kernel_ns as f64,
        "zero-copy pays interconnect latency per access: {} vs {}",
        rz.kernel_ns,
        ru.kernel_ns
    );
}

#[test]
fn empty_and_degenerate_graphs() {
    // Single vertex, no edges.
    let g = eta_graph::Csr::from_edges(1, &[]);
    let r = EtaGraph::new(&g, EtaConfig::paper())
        .run(Algorithm::Bfs, 0)
        .unwrap();
    assert_eq!(r.labels, vec![0]);

    // Self loops only.
    let g = eta_graph::Csr::from_edges(3, &[(0, 0), (1, 1), (2, 2)]);
    let r = EtaGraph::new(&g, EtaConfig::paper())
        .run(Algorithm::Bfs, 1)
        .unwrap();
    assert_eq!(r.labels, vec![u32::MAX, 0, u32::MAX]);

    // Star graph: one UDC split covers everything.
    let star: Vec<(u32, u32)> = (1..500u32).map(|d| (0, d)).collect();
    let g = eta_graph::Csr::from_edges(500, &star);
    let r = EtaGraph::new(&g, EtaConfig::paper())
        .run(Algorithm::Bfs, 0)
        .unwrap();
    assert_eq!(r.visited(), 500);
    assert_eq!(r.iterations, 2);
}
