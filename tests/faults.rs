//! Fault-injection contract tests, spanning eta-fault → sim/mem → engine →
//! serve.
//!
//! Two properties anchor the whole subsystem:
//!
//! 1. **The empty plan is inert.** Installing `FaultPlan::default()` must
//!    leave every observable byte — results, timings, profiles — identical
//!    to a device that never heard of faults. This is what lets the fault
//!    hooks live permanently inside the hot paths without a feature flag.
//! 2. **Recovery always terminates.** For *any* seeded plan, the serving
//!    loop must come back with every request accounted for (completed or
//!    rejected), deterministically.

use eta_fault::FaultPlan;
use eta_graph::generate::{rmat, RmatConfig};
use eta_graph::Csr;
use eta_serve::{poisson_trace, GraphRegistry, ServeConfig, Service, WorkloadConfig};
use eta_sim::{Device, GpuConfig, SanitizerMode};
use etagraph::{Algorithm, EtaConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary directed graph with 2..=64 vertices.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..64).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..256)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: a device with the empty plan installed runs any BFS to
    /// the same labels, the same simulated timings, and the same profile
    /// bytes as a device with no plan at all.
    #[test]
    fn empty_plan_is_byte_identical_to_no_plan(g in arb_graph(), idx in any::<proptest::sample::Index>()) {
        let src = idx.index(g.n()) as u32;
        let cfg = EtaConfig::paper();
        let run = |install: bool| {
            let mut dev = Device::new(GpuConfig::default_preset().with_profiling());
            if install {
                dev.install_faults(&FaultPlan::default(), 0);
            }
            let r = etagraph::engine::run(&mut dev, &g, src, Algorithm::Bfs, &cfg).unwrap();
            (r.labels, r.total_ns, r.kernel_ns, dev.profile().to_chrome_trace())
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Property 2: retry + backoff terminates for any seeded plan — the
    /// service returns with every request accounted for, twice identically.
    #[test]
    fn recovery_terminates_for_any_seeded_plan(seed in any::<u64>(), horizon in 1u64..100_000_000) {
        let mut reg = GraphRegistry::new();
        reg.insert("g", rmat(&RmatConfig::paper(8, 2_000, 3)));
        let workload = WorkloadConfig {
            requests: 10,
            seed: 11,
            rate_per_s: 50_000.0,
            ..WorkloadConfig::default()
        };
        let trace = poisson_trace(&reg, &["g".to_string()], &workload);
        let cfg = ServeConfig {
            devices: 2,
            faults: FaultPlan::seeded(seed, 2, horizon),
            ..ServeConfig::default()
        };
        let a = Service::new(&reg, cfg.clone()).run(&trace);
        prop_assert_eq!(a.completed + a.rejected, 10, "every request accounted");
        let b = Service::new(&reg, cfg).run(&trace);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same plan, same bytes"
        );
    }
}

/// The acceptance scenario end to end: a seeded plan with a persistently
/// hanging device, served with the sanitizer and profiler attached. No
/// panics; the faulty device is quarantined; degraded answers are flagged;
/// availability and the quarantine timeline are reported.
#[test]
fn seeded_faults_are_survived_detected_and_reported() {
    let mut reg = GraphRegistry::new();
    reg.insert("a", rmat(&RmatConfig::paper(10, 8_000, 1)));
    reg.insert("b", rmat(&RmatConfig::paper(10, 8_000, 2)));
    let workload = WorkloadConfig {
        requests: 48,
        seed: 7,
        rate_per_s: 20_000.0,
        ..WorkloadConfig::default()
    };
    let trace = poisson_trace(&reg, &["a".to_string(), "b".to_string()], &workload);

    // Pin device 0 into a permanent hang window (plus a seeded background
    // of ECC/UM/PCIe events) so the full ladder — retry, quarantine, CPU
    // fallback — must engage; device 1 keeps serving.
    let mut plan = FaultPlan::seeded(5, 2, 50_000_000);
    plan.hangs.push(eta_fault::HangFault {
        device: 0,
        start_ns: 0,
        end_ns: u64::MAX,
        budget_ns: 1_000,
    });
    let cfg = ServeConfig {
        devices: 2,
        gpu: GpuConfig::default_preset()
            .with_profiling()
            .with_sanitizer(SanitizerMode::Full),
        faults: plan,
        ..ServeConfig::default()
    };
    let mut service = Service::new(&reg, cfg);
    let report = service.run(&trace);

    assert_eq!(
        report.completed + report.rejected,
        48,
        "every request is accounted for"
    );
    assert!(report.availability > 0.0 && report.availability <= 1.0);
    assert!(
        !report.fault_events.is_empty(),
        "the hanging device must surface faults"
    );
    assert!(
        report.quarantines.iter().any(|q| q.device == 0),
        "device 0 must be quarantined"
    );
    assert!(
        report.records.iter().any(|r| r.degraded && r.retries > 0),
        "some request must have exhausted its retries into the CPU fallback"
    );
    // Degraded answers are still correct (reached counts match the oracle).
    for r in report.records.iter().filter(|r| r.degraded) {
        let levels = eta_graph::reference::bfs(reg.get(&r.graph).unwrap(), r.source);
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
        assert_eq!(r.reached, reached, "degraded request {}", r.id);
    }
    // Detection surfaces beyond the scheduler: the profiler carries fault
    // instants on the faults track.
    let profile = service.profile();
    let fault_instants: Vec<&str> = profile
        .processes
        .iter()
        .flat_map(|p| p.events.iter())
        .filter(|e| e.track == eta_prof::Track::Fault)
        .map(|e| e.name.as_str())
        .collect();
    assert!(
        fault_instants.contains(&"kernel_hang"),
        "device-side hang instants recorded, got {fault_instants:?}"
    );
    assert!(
        fault_instants.contains(&"retry") && fault_instants.contains(&"quarantine"),
        "scheduler-side ladder instants recorded, got {fault_instants:?}"
    );
    // And the run itself is deterministic under faults (re-run, same bytes).
    let again = Service::new(
        &reg,
        ServeConfig {
            devices: 2,
            gpu: GpuConfig::default_preset()
                .with_profiling()
                .with_sanitizer(SanitizerMode::Full),
            faults: {
                let mut p = FaultPlan::seeded(5, 2, 50_000_000);
                p.hangs.push(eta_fault::HangFault {
                    device: 0,
                    start_ns: 0,
                    end_ns: u64::MAX,
                    budget_ns: 1_000,
                });
                p
            },
            ..ServeConfig::default()
        },
    )
    .run(&trace);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&again).unwrap()
    );
}
