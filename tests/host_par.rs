//! Host-parallelism byte-identity: `--host-threads` may only change host
//! wall-clock, never a simulated artifact.
//!
//! The simulator's launch path records accesses in canonical block-major
//! order, fans the per-SM coalesce and L1 stages out across host threads,
//! and replays the shared L2/DRAM stage serially in the recorded order
//! (DESIGN.md, "Host parallelism"). These tests pin the contract those
//! stages exist to keep: every observable artifact — run results down to
//! the last counter, the sanitizer report, the profiler trace, the
//! transfer timeline — is byte-identical between one host thread and
//! four, across algorithms and transfer backends, on arbitrary graphs.

use eta_graph::generate::{rmat, RmatConfig};
use eta_graph::Csr;
use eta_sim::{Device, GpuConfig, SanitizerMode};
use etagraph::{engine, Algorithm, EtaConfig, TransferMode};
use proptest::prelude::*;

/// Every simulated artifact of one sanitized, profiled run, rendered to
/// comparable bytes.
#[derive(Debug, Clone, PartialEq)]
struct Artifacts {
    run: String,
    sanitizer: String,
    profile: String,
    timeline: String,
}

fn run_artifacts(
    g: &Csr,
    source: u32,
    alg: Algorithm,
    mode: TransferMode,
    host_threads: usize,
) -> Artifacts {
    let gpu = GpuConfig::default_preset()
        .with_host_threads(host_threads)
        .with_sanitizer(SanitizerMode::Full)
        .with_profiling();
    let mut dev = Device::new(gpu);
    let cfg = EtaConfig {
        transfer: mode,
        ..EtaConfig::paper()
    };
    let r = engine::run(&mut dev, g, source, alg, &cfg).expect("host-backed run cannot OOM");
    let report = dev.sanitizer_report().expect("sanitizer was attached");
    Artifacts {
        run: format!("{r:?}"),
        sanitizer: serde_json::to_string(&report).expect("report serializes"),
        profile: dev.profile().to_chrome_trace(),
        timeline: r.timeline.to_chrome_trace(),
    }
}

/// Strategy: an arbitrary weighted digraph (≤ 96 vertices) plus a source.
fn arb_weighted_with_source() -> impl Strategy<Value = (Csr, u32)> {
    (2usize..96, 0u64..u64::MAX, any::<proptest::sample::Index>()).prop_flat_map(
        |(n, seed, idx)| {
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..400).prop_map(move |edges| {
                let g = Csr::from_edges(n, &edges).with_random_weights(seed, 32);
                (g, idx.index(n) as u32)
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One host thread and four produce byte-identical artifacts for every
    /// algorithm × transfer backend on arbitrary graphs.
    #[test]
    fn artifacts_are_byte_identical_across_host_threads(
        (g, src) in arb_weighted_with_source(),
        alg_pick in any::<proptest::sample::Index>(),
        mode_pick in any::<proptest::sample::Index>(),
    ) {
        const ALGS: [Algorithm; 4] =
            [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Sswp, Algorithm::Cc];
        const MODES: [TransferMode; 5] = [
            TransferMode::Unified, TransferMode::UnifiedPrefetch, TransferMode::ExplicitCopy,
            TransferMode::ZeroCopy, TransferMode::Adaptive,
        ];
        let alg = ALGS[alg_pick.index(ALGS.len())];
        let mode = MODES[mode_pick.index(MODES.len())];
        let serial = run_artifacts(&g, src, alg, mode, 1);
        let parallel = run_artifacts(&g, src, alg, mode, 4);
        prop_assert_eq!(serial, parallel);
    }
}

/// Sharded traversal: per-device drain stages at 1 vs 4 host threads agree
/// on labels, timing, exchange volume, and every merged counter.
#[test]
fn sharded_run_is_identical_across_host_threads() {
    let g = rmat(&RmatConfig::paper(9, 4_000, 17));
    let part = eta_shard::GraphPartition::vertex_range(&g, 2);
    let run = |host_threads: usize| {
        let gpu = GpuConfig::default_preset().with_host_threads(host_threads);
        let mut devs: Vec<Device> = (0..2).map(|_| Device::new(gpu)).collect();
        let mut fabric = eta_mem::PeerFabric::nvlink(2);
        let r = etagraph::sharded::run_sharded(
            &mut devs,
            &mut fabric,
            &part,
            0,
            Algorithm::Bfs,
            &EtaConfig::paper(),
        )
        .expect("sharded run");
        format!("{r:?}")
    };
    assert_eq!(run(1), run(4));
}
