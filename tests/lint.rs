//! The lint gate, as a test: the workspace at HEAD must be clean under
//! `eta-lint` (zero non-baselined findings, zero stale baseline entries),
//! and the staleness machinery itself must work — a suppression entry that
//! no longer matches any finding is an error, not silence.

use eta_lint::{baseline, lint_workspace, Finding};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean_at_head() {
    let report = lint_workspace(&workspace_root()).expect("lint runs");
    assert!(report.files_scanned > 50, "walker found the workspace");
    assert!(
        report.findings.is_empty(),
        "non-baselined findings at HEAD:\n{}",
        report.text()
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale lint.allow entries at HEAD:\n{}",
        report.text()
    );
    assert!(report.is_clean());
}

#[test]
fn report_output_is_deterministic() {
    let a = lint_workspace(&workspace_root()).expect("lint runs");
    let b = lint_workspace(&workspace_root()).expect("lint runs");
    assert_eq!(a.text(), b.text());
    assert_eq!(a.json(), b.json());
}

#[test]
fn stale_baseline_entries_are_errors() {
    // An entry whose source line matches nothing is reported stale, and a
    // report carrying a stale entry is not clean — this is what turns the
    // ci.sh gate red when a fix forgets to delete its suppression.
    let entries =
        baseline::parse("L-PANIC\tcrates/ghost/src/lib.rs\tthis_line_no_longer_exists.unwrap();\n")
            .expect("well-formed entry");
    let applied = baseline::apply(Vec::<Finding>::new(), &entries, |_| String::new());
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].path, "crates/ghost/src/lib.rs");

    let mut report = eta_lint::LintReport {
        files_scanned: 1,
        stale_baseline: applied.stale,
        ..Default::default()
    };
    report.sort();
    assert!(!report.is_clean());
    assert!(report.text().contains("STALE-BASELINE"));
}

#[test]
fn malformed_baseline_fails_the_run() {
    let err = baseline::parse("L-PANIC missing-tabs here\n").expect_err("rejected");
    assert_eq!(err.line, 1);
}
