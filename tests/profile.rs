//! Integration tests for the `eta-prof` profiling layer: overlap visibility
//! on a UM-oversubscribed run, byte-determinism of every sink, and the
//! PROFILING.md contract that each documented counter is actually emitted.

use eta_graph::generate::{rmat, RmatConfig};
use eta_prof::{Profile, Track};
use eta_sim::{Device, GpuConfig};
use etagraph::{Algorithm, EtaConfig};

/// One BFS on a device sized below the run's working set (CSR + labels +
/// frontier state), so UM pages the topology while kernels run (the Fig. 4
/// overlap), with profiling on.
fn oversubscribed_bfs() -> Device {
    let g = rmat(&RmatConfig::paper(13, 94_000, 0x51));
    let device_mem = (g.m() as f64 * 1.5 * 4.0) as u64;
    let gpu = GpuConfig::gtx1080ti_scaled(device_mem).with_profiling();
    let mut dev = Device::new(gpu);
    etagraph::engine::run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper())
        .expect("UM oversubscription must not OOM");
    dev
}

/// Every `{`/`[` closes in order — a structural sanity check the
/// hand-formatted sinks must pass (no JSON parser exists in this workspace).
fn assert_balanced(s: &str) {
    let mut stack = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => in_str = false,
                _ => escaped = false,
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket"),
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed delimiters: {stack:?}");
    assert!(!in_str, "unterminated string");
}

#[test]
fn oversubscribed_bfs_profile_shows_transfer_compute_overlap() {
    let dev = oversubscribed_bfs();
    let p = dev.profile();
    assert!(p.kernel_busy_ns() > 0, "kernel track empty");
    assert!(p.transfer_busy_ns() > 0, "no UM/PCIe traffic recorded");
    assert!(
        p.overlap_ns() > 0,
        "demand-paged BFS must overlap migrations with compute"
    );
    let um_events = p.processes[0]
        .events
        .iter()
        .filter(|e| e.track == Track::Um)
        .count();
    assert!(um_events > 0, "migrations/evictions missing from Um track");

    // The Chrome trace shows the overlap as distinct, named tracks.
    let trace = p.to_chrome_trace();
    assert!(trace.contains("\"name\":\"kernels\""));
    assert!(trace.contains("\"name\":\"unified memory\""));
    assert!(trace.contains(&format!("\"tid\":{}", Track::Kernel.tid())));
    assert!(trace.contains(&format!("\"tid\":{}", Track::Um.tid())));
}

#[test]
fn every_sink_is_byte_identical_across_runs() {
    let a = oversubscribed_bfs().profile();
    let b = oversubscribed_bfs().profile();
    assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.summary_text(), b.summary_text());
}

#[test]
fn json_sinks_are_structurally_valid() {
    let p = oversubscribed_bfs().profile();
    let trace = p.to_chrome_trace();
    assert_balanced(&trace);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with('}'));
    let json = p.to_json();
    assert_balanced(&json);
    assert!(json.contains("\"schema\": \"eta-prof-v1\""));
}

#[test]
fn every_counter_documented_in_profiling_md_is_emitted() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/PROFILING.md"))
        .expect("PROFILING.md must exist at the repo root");
    let start = doc
        .find("<!-- counters:begin -->")
        .expect("counters:begin marker");
    let end = doc
        .find("<!-- counters:end -->")
        .expect("counters:end marker");
    let table = &doc[start..end];
    // Counter names are the first backticked token of each table row.
    let documented: Vec<&str> = table
        .lines()
        .filter(|l| l.trim_start().starts_with("| `"))
        .filter_map(|l| {
            let open = l.find('`')? + 1;
            let close = l[open..].find('`')? + open;
            Some(&l[open..close])
        })
        .collect();
    assert!(
        documented.len() >= 20,
        "marker block lists the counter table, found {documented:?}"
    );
    let json = oversubscribed_bfs().profile().to_json();
    for name in documented {
        assert!(
            json.contains(&format!("\"{name}\":")),
            "PROFILING.md documents counter {name:?} but no event emits it"
        );
    }
}

#[test]
fn disabled_profiling_is_the_default_and_records_nothing() {
    let g = rmat(&RmatConfig::paper(10, 8_000, 3));
    let mut dev = Device::new(GpuConfig::default_preset());
    etagraph::engine::run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
    let p = dev.profile();
    assert_eq!(p.event_count(), 0);
    assert_eq!(
        p.processes[0].events.capacity(),
        0,
        "no allocation when off"
    );
    // An empty profile still renders every sink deterministically.
    assert_eq!(
        Profile::single("device", Vec::new()).summary_text(),
        p.summary_text()
    );
}
