//! Property-based tests of the reproduction's core invariants.
//!
//! Random graphs are small (≤ 96 vertices) so each case simulates in
//! microseconds; proptest then explores hundreds of shapes including the
//! pathological ones (isolated vertices, self-loops, stars, chains).

use eta_graph::{reference, Csr, Vst};
use eta_sim::GpuConfig;
use etagraph::pagerank::PageRankConfig;
use etagraph::udc::{shadow_count_graph, shadow_slices};
use etagraph::{Algorithm, EtaConfig, EtaGraph, TransferMode};
use proptest::prelude::*;

/// Strategy: an arbitrary directed graph with ≤ `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

/// Strategy: a weighted graph plus a valid source vertex.
fn arb_weighted_with_source() -> impl Strategy<Value = (Csr, u32)> {
    (
        arb_graph(96, 400),
        0u64..u64::MAX,
        any::<proptest::sample::Index>(),
    )
        .prop_map(|(g, seed, idx)| {
            let src = idx.index(g.n()) as u32;
            (g.with_random_weights(seed, 32), src)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- Unified Degree Cut: Definition 3 --------------------------------

    /// Shadow slices partition the edge range: disjoint, covering, bounded.
    #[test]
    fn udc_slices_partition(start in 0u32..10_000, len in 0u32..500, k in 1u32..40) {
        let end = start + len;
        let slices = shadow_slices(start, end, k);
        let mut cursor = start;
        for &(s, e) in &slices {
            prop_assert_eq!(s, cursor, "slices must tile without gaps");
            prop_assert!(e > s && e - s <= k, "degree bound violated");
            cursor = e;
        }
        prop_assert_eq!(cursor, end, "slices must cover the range");
        // |shadows| = ceil(deg / K)
        prop_assert_eq!(slices.len() as u32, len.div_ceil(k));
    }

    /// UDC and Tigr's VST agree on |N| for every graph and K — they encode
    /// the same Definition-3 mapping, materialized vs on-the-fly.
    #[test]
    fn udc_matches_vst_shadow_count((g, _) in arb_weighted_with_source(), k in 1u32..32) {
        let vst = Vst::from_csr(&g, k);
        prop_assert_eq!(vst.n_virtual() as u64, shadow_count_graph(&g, k));
    }

    // ---- Theorems 1 & 2: traversal through shadow vertices ---------------

    /// BFS through the simulated GPU equals the CPU oracle on arbitrary
    /// graphs (reachability preserved through shadow vertices).
    #[test]
    fn gpu_bfs_equals_oracle((g, src) in arb_weighted_with_source()) {
        let eta = EtaGraph::new(&g, EtaConfig::paper());
        let r = eta.run(Algorithm::Bfs, src).unwrap();
        prop_assert_eq!(r.labels, reference::bfs(&g, src));
    }

    /// SSSP label equality (virtual paths cost the same as real paths).
    #[test]
    fn gpu_sssp_equals_oracle((g, src) in arb_weighted_with_source()) {
        let eta = EtaGraph::new(&g, EtaConfig::paper());
        let r = eta.run(Algorithm::Sssp, src).unwrap();
        prop_assert_eq!(r.labels, reference::sssp(&g, src));
    }

    /// SSWP label equality under the max-min semiring.
    #[test]
    fn gpu_sswp_equals_oracle((g, src) in arb_weighted_with_source()) {
        let eta = EtaGraph::new(&g, EtaConfig::paper());
        let r = eta.run(Algorithm::Sswp, src).unwrap();
        prop_assert_eq!(r.labels, reference::sswp(&g, src));
    }

    /// The degree limit K never changes results, only performance.
    #[test]
    fn results_invariant_under_k((g, src) in arb_weighted_with_source(), k in 1u32..40) {
        let cfg = EtaConfig { k, ..EtaConfig::paper() };
        let r = EtaGraph::new(&g, cfg).run(Algorithm::Bfs, src).unwrap();
        prop_assert_eq!(r.labels, reference::bfs(&g, src));
    }

    /// Neither SMP nor the transfer mode changes results.
    #[test]
    fn results_invariant_under_config((g, src) in arb_weighted_with_source(), smp in any::<bool>()) {
        let expect = reference::sssp(&g, src);
        for transfer in [
            TransferMode::Unified,
            TransferMode::UnifiedPrefetch,
            TransferMode::ZeroCopy,
            TransferMode::Adaptive,
        ] {
            let cfg = EtaConfig { smp, transfer, ..EtaConfig::paper() };
            let r = EtaGraph::new(&g, cfg).run(Algorithm::Sssp, src).unwrap();
            prop_assert_eq!(&r.labels, &expect, "smp={} transfer={:?}", smp, transfer);
        }
    }

    // ---- representations --------------------------------------------------

    /// Every alternative representation preserves the edge multiset.
    #[test]
    fn representations_preserve_edges((g, _) in arb_weighted_with_source()) {
        let mut csr_edges = g.edge_tuples();
        csr_edges.sort_unstable();
        let gs = eta_graph::GShards::from_csr(&g, 8);
        prop_assert_eq!(gs.edge_tuples(), csr_edges.clone());
        let el = eta_graph::EdgeList::from_csr(&g);
        let mut el_edges: Vec<(u32, u32)> =
            el.src.iter().zip(&el.dst).map(|(&a, &b)| (a, b)).collect();
        el_edges.sort_unstable();
        prop_assert_eq!(el_edges, csr_edges.clone());
        // Transpose twice is the identity.
        prop_assert_eq!(g.transpose().transpose(), g.clone());
        // Serialization round-trips.
        let mut buf = Vec::new();
        eta_graph::io::write_csr(&g, &mut buf).unwrap();
        prop_assert_eq!(eta_graph::io::read_csr(&mut buf.as_slice()).unwrap(), g);
    }

    // ---- accounting invariants --------------------------------------------

    /// Metric identities hold for every run: cache hits never exceed
    /// requests, DRAM reads never exceed L2 reads, times are consistent.
    #[test]
    fn metric_identities((g, src) in arb_weighted_with_source()) {
        let r = EtaGraph::new(&g, EtaConfig::paper()).run(Algorithm::Sssp, src).unwrap();
        let m = &r.metrics;
        prop_assert!(m.l1.hits <= m.l1_requests);
        prop_assert!(m.l2_requests <= m.l1_requests);
        prop_assert!(m.dram_transactions <= m.l2_requests);
        prop_assert_eq!(m.l1.accesses(), m.l1_requests);
        prop_assert!(r.total_ns >= r.kernel_ns);
        prop_assert!(r.overlap_fraction >= 0.0 && r.overlap_fraction <= 1.0);
        // Iterations and per-iteration stats agree.
        prop_assert_eq!(r.per_iteration.len(), r.iterations as usize);
    }

    /// Activation accounting: visited == reachable set size for BFS.
    #[test]
    fn activation_equals_reachability((g, src) in arb_weighted_with_source()) {
        let r = EtaGraph::new(&g, EtaConfig::paper()).run(Algorithm::Bfs, src).unwrap();
        prop_assert_eq!(r.visited(), eta_graph::analysis::reachable_from(&g, src));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- hybrid transfer management ---------------------------------------

    /// The adaptive policy routes bytes, never results: labels are
    /// byte-identical to every static transfer mode for every frontier
    /// algorithm, and PageRank rank bits are identical too (f32 adds in the
    /// same order regardless of how operands crossed the link).
    #[test]
    fn adaptive_results_match_every_static_mode((g, src) in arb_weighted_with_source()) {
        let statics = [
            TransferMode::Unified,
            TransferMode::UnifiedPrefetch,
            TransferMode::ZeroCopy,
        ];
        for alg in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Sswp] {
            let a = EtaGraph::new(&g, EtaConfig::adaptive()).run(alg, src).unwrap();
            for transfer in statics {
                let cfg = EtaConfig { transfer, ..EtaConfig::paper() };
                let r = EtaGraph::new(&g, cfg).run(alg, src).unwrap();
                prop_assert_eq!(&r.labels, &a.labels, "alg={:?} transfer={:?}", alg, transfer);
            }
        }
        let ranks = |transfer| {
            let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
            let cfg = PageRankConfig {
                iterations: 5,
                eta: EtaConfig { transfer, ..EtaConfig::paper() },
                ..PageRankConfig::default()
            };
            let bits: Vec<u32> = etagraph::pagerank::run(&mut dev, &g, &cfg)
                .unwrap()
                .ranks
                .iter()
                .map(|r| r.to_bits())
                .collect();
            bits
        };
        let adaptive_bits = ranks(TransferMode::Adaptive);
        for transfer in statics {
            prop_assert_eq!(&ranks(transfer), &adaptive_bits, "transfer={:?}", transfer);
        }
    }

    /// Adaptive decisions are a pure function of the access stream: two
    /// runs of the same query agree byte-for-byte on labels, simulated
    /// time, and the final per-backend decision mix.
    #[test]
    fn adaptive_runs_are_deterministic((g, src) in arb_weighted_with_source()) {
        let run = || {
            let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
            let r = EtaGraph::new(&g, EtaConfig::adaptive())
                .run_on(&mut dev, Algorithm::Sssp, src)
                .unwrap();
            (r.labels, r.total_ns, dev.mem.adaptive_totals())
        };
        prop_assert_eq!(run(), run());
    }

    /// The zero-copy backend acquires no residency: the UM driver's
    /// resident footprint stays zero while every touched graph byte is
    /// served over the link.
    #[test]
    fn zero_copy_acquires_no_residency((g, src) in arb_weighted_with_source()) {
        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        let r = EtaGraph::new(&g, EtaConfig::zero_copy())
            .run_on(&mut dev, Algorithm::Sssp, src)
            .unwrap();
        prop_assert_eq!(dev.mem.um.resident_bytes(), 0, "zero-copy must not migrate pages");
        if g.degree(src) > 0 {
            prop_assert!(dev.mem.zero_copy_bytes > 0, "graph reads must cross the link");
        }
        prop_assert_eq!(r.labels, reference::sssp(&g, src));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Device capacity only separates run/OOM — never changes labels.
    #[test]
    fn capacity_never_changes_results((g, src) in arb_weighted_with_source(), mb in 1u64..4) {
        let gpu = GpuConfig::gtx1080ti_scaled(mb * 1024 * 1024);
        let eta = EtaGraph::new(&g, EtaConfig::paper()).with_gpu(gpu);
        if let Ok(r) = eta.run(Algorithm::Bfs, src) {
            prop_assert_eq!(r.labels, reference::bfs(&g, src));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel sort agrees with the standard sort on arbitrary inputs.
    #[test]
    fn par_sort_matches_std(mut v in proptest::collection::vec((0u32..500, 0u32..u32::MAX), 0..5000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        eta_par::par_sort_by_key(&mut v, |&pair| pair);
        prop_assert_eq!(v, expect);
    }

    /// GPU connected components equal the union-find oracle on symmetrized
    /// random graphs.
    #[test]
    fn gpu_cc_equals_union_find((g, _) in arb_weighted_with_source()) {
        let mut edges = g.edge_tuples();
        edges.extend(g.edge_tuples().iter().map(|&(a, b)| (b, a)));
        let sym = Csr::from_edges(g.n(), &edges);
        let r = EtaGraph::new(&sym, EtaConfig::paper())
            .run(Algorithm::Cc, 0)
            .unwrap();
        let mut uf = eta_graph::analysis::UnionFind::new(sym.n());
        for (a, b) in sym.edge_tuples() {
            uf.union(a, b);
        }
        let mut min_of_root = std::collections::HashMap::new();
        for v in 0..sym.n() as u32 {
            let root = uf.find(v);
            let e = min_of_root.entry(root).or_insert(v);
            *e = (*e).min(v);
        }
        for v in 0..sym.n() as u32 {
            prop_assert_eq!(r.labels[v as usize], min_of_root[&uf.find(v)]);
        }
    }

    /// Batched multi-source BFS equals per-source BFS for arbitrary graphs
    /// and batch compositions, up to the full 32-wide reach mask, whether
    /// launched one-shot or through a warm session. Exercises duplicate
    /// sources and every batch width class (1, partial, full).
    #[test]
    fn multi_bfs_equals_individual((g, src) in arb_weighted_with_source(), extra in proptest::collection::vec(any::<proptest::sample::Index>(), 0..31)) {
        let mut sources = vec![src];
        for idx in extra {
            sources.push(idx.index(g.n()) as u32);
        }
        assert!(sources.len() <= etagraph::multi_bfs::MAX_BATCH);
        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        let r = etagraph::multi_bfs::run(&mut dev, &g, &sources, &EtaConfig::paper()).unwrap();
        for (s, &source) in sources.iter().enumerate() {
            prop_assert_eq!(&r.levels[s], &reference::bfs(&g, source), "source {}", source);
        }
        // The warm-session path (resources allocated once, reused) agrees
        // with the one-shot path on the same batch.
        let mut session = etagraph::session::Session::new(&g, EtaConfig::paper()).unwrap();
        let warm = session.query_batch(&sources).unwrap();
        for (s, &source) in sources.iter().enumerate() {
            prop_assert_eq!(&warm.levels[s], &r.levels[s], "warm source {}", source);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interrupt/resume is invisible in the answer: a traversal that parks
    /// a snapshot at an arbitrary interval and is then restarted from that
    /// snapshot on a fresh device produces labels byte-identical to the
    /// uninterrupted run, for every algorithm and graph shape.
    #[test]
    fn resumed_traversal_is_byte_identical(
        (g, src) in arb_weighted_with_source(),
        interval in 1u32..5,
        which in 0usize..3,
    ) {
        let alg = [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Sswp][which];
        let cfg = EtaConfig::paper();
        let digest = g.digest();

        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        let (res, ready) = etagraph::engine::prepare(&mut dev, &g, &cfg, false).unwrap();
        let mut sink = eta_ckpt::CkptSink::every(interval);
        let clean = etagraph::engine::run_query_ckpt(
            &mut dev, &res, &g, src, alg, &cfg, 0, ready,
            eta_ckpt::CkptCtl::with_sink(&mut sink, digest),
        ).unwrap();

        // Short traversals may finish before the first snapshot; resume
        // only applies when a snapshot was actually parked.
        if let Some(ck) = sink.take() {
            prop_assert!(ck.iteration >= interval);
            let mut dev2 = eta_sim::Device::new(GpuConfig::default_preset());
            let (res2, ready2) = etagraph::engine::prepare(&mut dev2, &g, &cfg, false).unwrap();
            let mut sink2 = eta_ckpt::CkptSink::default();
            let resumed = etagraph::engine::run_query_ckpt(
                &mut dev2, &res2, &g, src, alg, &cfg, 0, ready2,
                eta_ckpt::CkptCtl::resuming(&mut sink2, &ck, digest),
            ).unwrap();
            prop_assert_eq!(&resumed.labels, &clean.labels, "labels diverge after resume");
            prop_assert_eq!(resumed.iterations, clean.iterations);
        }
    }

    /// Same property for PageRank, whose state is float-valued: the resumed
    /// ranks must match the uninterrupted ranks bit-for-bit, not just
    /// approximately.
    #[test]
    fn resumed_pagerank_is_bit_identical((g, _) in arb_weighted_with_source(), interval in 1u32..8) {
        let cfg = etagraph::pagerank::PageRankConfig {
            damping: 0.85,
            iterations: 10,
            eta: EtaConfig::paper(),
        };
        let digest = g.digest();
        let bits = |ranks: &[f32]| ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>();

        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        let mut sink = eta_ckpt::CkptSink::every(interval);
        let clean = etagraph::pagerank::run_ckpt(
            &mut dev, &g, &cfg, eta_ckpt::CkptCtl::with_sink(&mut sink, digest),
        ).unwrap();

        if let Some(ck) = sink.take() {
            let mut dev2 = eta_sim::Device::new(GpuConfig::default_preset());
            let mut sink2 = eta_ckpt::CkptSink::default();
            let resumed = etagraph::pagerank::run_ckpt(
                &mut dev2, &g, &cfg, eta_ckpt::CkptCtl::resuming(&mut sink2, &ck, digest),
            ).unwrap();
            prop_assert_eq!(bits(&resumed.ranks), bits(&clean.ranks));
            prop_assert_eq!(resumed.iterations, clean.iterations);
        }
    }
}

// ---- eta-shard: vertex-range partitioning & the sharded BSP loop ---------

/// The config the sharded loop normalizes every run to (in-core UDC,
/// push-only); the single-device baseline must use the same one so label
/// comparisons measure partitioning, not configuration drift.
fn sharded_cfg() -> EtaConfig {
    EtaConfig {
        udc: etagraph::UdcMode::InCore,
        direction_optimizing: false,
        ..EtaConfig::paper()
    }
}

fn device_group(n: u32) -> Vec<eta_sim::Device> {
    (0..n)
        .map(|_| eta_sim::Device::new(GpuConfig::default_preset()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cuts tile `0..n` and every global edge — weight included — lands
    /// in exactly one shard's owned rows, recoverable through `to_global`.
    #[test]
    fn partition_assigns_every_edge_exactly_once(
        (g, _) in arb_weighted_with_source(),
        devices in 1u32..5,
    ) {
        let part = eta_shard::GraphPartition::vertex_range(&g, devices);
        prop_assert_eq!(part.shards.len(), devices as usize);
        prop_assert_eq!(part.cuts[0], 0);
        prop_assert_eq!(*part.cuts.last().unwrap(), g.n() as u32);
        prop_assert!(part.cuts.windows(2).all(|w| w[0] <= w[1]));

        let mut local: Vec<(u32, u32, u32)> = Vec::new();
        for s in &part.shards {
            prop_assert_eq!(s.own_len(), s.hi - s.lo);
            prop_assert_eq!(s.local_m(), s.csr.m() as u64);
            for v in 0..s.own_len() {
                let ws = s.csr.edge_weights(v);
                for (i, &dst) in s.csr.neighbors(v).iter().enumerate() {
                    local.push((s.to_global(v), s.to_global(dst), ws[i]));
                }
            }
        }
        let mut global: Vec<(u32, u32, u32)> = Vec::new();
        for v in 0..g.n() as u32 {
            let ws = g.edge_weights(v);
            for (i, &dst) in g.neighbors(v).iter().enumerate() {
                global.push((v, dst, ws[i]));
            }
        }
        local.sort_unstable();
        global.sort_unstable();
        prop_assert_eq!(local, global);
    }

    /// A shard's halo is exactly the set of cross-range destinations of its
    /// owned edges: sorted, deduplicated, nothing owned, nothing missing.
    #[test]
    fn halo_is_exactly_the_cross_shard_destination_set(
        (g, _) in arb_weighted_with_source(),
        devices in 1u32..5,
    ) {
        let part = eta_shard::GraphPartition::vertex_range(&g, devices);
        for s in &part.shards {
            let mut expected: Vec<u32> = (s.lo..s.hi)
                .flat_map(|v| g.neighbors(v).iter().copied())
                .filter(|&d| d < s.lo || d >= s.hi)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(&s.halo, &expected);
            // Local ids round-trip: owned then halo, densely packed.
            for &h in &s.halo {
                let l = s.to_local(h).unwrap();
                prop_assert!(s.is_halo_local(l));
                prop_assert_eq!(s.to_global(l), h);
            }
        }
    }

    /// `ShardSpec::footprint_bytes` is *exact*: preparing the shard on a
    /// fresh device moves the allocator's explicit accounting by precisely
    /// the predicted figure, for every K and both topology transfer modes.
    /// (Group admission in eta-serve sizes residency off this number, so an
    /// estimate that drifts would admit partitions that OOM mid-flight.)
    #[test]
    fn shard_footprint_bytes_is_exact(
        (g, _) in arb_weighted_with_source(),
        devices in 1u32..5,
        k in 1u32..40,
        explicit in any::<bool>(),
    ) {
        let cfg = EtaConfig {
            k,
            transfer: if explicit {
                TransferMode::ExplicitCopy
            } else {
                TransferMode::UnifiedPrefetch
            },
            ..sharded_cfg()
        };
        let part = eta_shard::GraphPartition::vertex_range(&g, devices);
        for s in &part.shards {
            let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
            let before = dev.mem.explicit_used_bytes();
            etagraph::engine::prepare(&mut dev, &s.csr, &cfg, false).unwrap();
            let used = dev.mem.explicit_used_bytes() - before;
            prop_assert_eq!(used, s.footprint_bytes(k, explicit),
                "shard {}..{} (halo {})", s.lo, s.hi, s.halo.len());
        }
    }
}

proptest! {
    // Each case runs a full multi-device BSP simulation; keep the case
    // count modest (the strategies still cover stars, chains, empty tails).
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merged sharded labels are byte-identical to the single-device engine
    /// for every traversal algorithm, group size and graph shape — including
    /// partitions where tail shards own an empty range.
    #[test]
    fn sharded_group_matches_single_device(
        (g, src) in arb_weighted_with_source(),
        devices in 2u32..5,
        which in 0usize..3,
    ) {
        let alg = [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Sswp][which];
        let cfg = sharded_cfg();
        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        let single = etagraph::engine::run(&mut dev, &g, src, alg, &cfg).unwrap();

        let part = eta_shard::GraphPartition::vertex_range(&g, devices);
        let mut devs = device_group(devices);
        let mut fabric = eta_mem::PeerFabric::nvlink(devices);
        let sharded =
            etagraph::sharded::run_sharded(&mut devs, &mut fabric, &part, src, alg, &cfg)
                .unwrap();
        prop_assert_eq!(&sharded.labels, &single.labels, "labels diverge under sharding");
        // Conservation: what left the wire is what the per-superstep log saw.
        prop_assert_eq!(
            sharded.per_superstep.iter().map(|s| s.exchanged_bytes).sum::<u64>(),
            sharded.exchanged_bytes
        );
    }

    /// Sharded PageRank — float-valued, all-active — merges to ranks
    /// bit-identical to the single-device run at every group size.
    #[test]
    fn sharded_pagerank_is_bit_identical(
        (g, _) in arb_weighted_with_source(),
        devices in 2u32..5,
    ) {
        let cfg = etagraph::pagerank::PageRankConfig {
            damping: 0.85,
            iterations: 8,
            eta: EtaConfig::paper(),
        };
        let bits = |ranks: &[f32]| ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>();
        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        let single = etagraph::pagerank::run(&mut dev, &g, &cfg).unwrap();

        let part = eta_shard::GraphPartition::vertex_range(&g, devices);
        let mut devs = device_group(devices);
        let mut fabric = eta_mem::PeerFabric::nvlink(devices);
        let sharded = etagraph::sharded::run_sharded_pagerank(
            &mut devs, &mut fabric, &part, &g, &cfg,
        )
        .unwrap();
        prop_assert_eq!(bits(&sharded.ranks), bits(&single.ranks));
        prop_assert_eq!(sharded.iterations, single.iterations);
    }
}
