//! Integration tests for the sanitizer (the workspace's compute-sanitizer
//! analogue). Two halves:
//!
//! 1. every shipped kernel family runs under `SanitizerMode::Full` with zero
//!    errors (lint warnings are advisory and allowed);
//! 2. deliberately-buggy kernels — the classic GPU graph-traversal bugs the
//!    tool exists to catch — are each detected with the right finding kind
//!    and a usable site report.

use eta_graph::generate::{rmat, RmatConfig};
use eta_mem::system::DSlice;
use eta_sim::{
    Device, FindingKind, GpuConfig, Kernel, LaunchConfig, SanitizerMode, SanitizerReport, Severity,
    WarpCtx,
};
use etagraph::{Algorithm, EtaConfig};

fn sanitized_dev() -> Device {
    Device::new(GpuConfig::default_preset().with_sanitizer(SanitizerMode::Full))
}

fn report(dev: &Device) -> SanitizerReport {
    dev.sanitizer_report().expect("sanitizer was enabled")
}

// ---------------------------------------------------------------------------
// Half 1: the shipped kernels are clean.
// ---------------------------------------------------------------------------

#[test]
fn etagraph_kernels_are_clean_across_all_configurations() {
    let g = rmat(&RmatConfig::paper(10, 12_000, 42)).with_random_weights(3, 32);
    let cases: Vec<(&str, Algorithm, EtaConfig)> = vec![
        ("bfs paper", Algorithm::Bfs, EtaConfig::paper()),
        ("sssp paper", Algorithm::Sssp, EtaConfig::paper()),
        ("sswp paper", Algorithm::Sswp, EtaConfig::paper()),
        ("cc paper", Algorithm::Cc, EtaConfig::paper()),
        (
            "bfs no-smp",
            Algorithm::Bfs,
            EtaConfig {
                smp: false,
                ..EtaConfig::paper()
            },
        ),
        (
            "sssp no-smp",
            Algorithm::Sssp,
            EtaConfig {
                smp: false,
                ..EtaConfig::paper()
            },
        ),
        ("bfs out-of-core", Algorithm::Bfs, EtaConfig::out_of_core()),
        (
            "sssp out-of-core",
            Algorithm::Sssp,
            EtaConfig::out_of_core(),
        ),
        (
            "bfs pull",
            Algorithm::Bfs,
            EtaConfig::direction_optimizing(),
        ),
        ("bfs w/o ump", Algorithm::Bfs, EtaConfig::without_ump()),
    ];
    for (label, alg, cfg) in cases {
        let mut dev = sanitized_dev();
        etagraph::engine::run(&mut dev, &g, 0, alg, &cfg).expect("run fits");
        let rep = report(&dev);
        assert!(
            rep.is_clean(),
            "sanitizer errors in {label}:\n{}",
            rep.summarize()
        );
        assert!(rep.launches > 0, "{label} launched nothing");
    }
}

#[test]
fn pagerank_and_multi_bfs_are_clean() {
    let g = rmat(&RmatConfig::paper(10, 12_000, 7));
    let mut dev = sanitized_dev();
    let cfg = etagraph::pagerank::PageRankConfig {
        iterations: 5,
        ..Default::default()
    };
    etagraph::pagerank::run(&mut dev, &g, &cfg).expect("pagerank fits");
    let rep = report(&dev);
    assert!(rep.is_clean(), "pagerank:\n{}", rep.summarize());

    let mut dev = sanitized_dev();
    etagraph::multi_bfs::run(&mut dev, &g, &[0, 1, 5, 9], &EtaConfig::paper())
        .expect("multi-bfs fits");
    let rep = report(&dev);
    assert!(rep.is_clean(), "multi-bfs:\n{}", rep.summarize());
}

#[test]
fn baseline_framework_kernels_are_clean() {
    use eta_baselines::{ChunkStream, CushaLike, Framework, GunrockLike, TigrLike};
    let g = rmat(&RmatConfig::paper(10, 12_000, 11)).with_random_weights(2, 16);
    let baselines: Vec<Box<dyn Framework>> = vec![
        Box::new(CushaLike::default()),
        Box::new(GunrockLike::default()),
        Box::new(TigrLike::default()),
        Box::new(ChunkStream::default()),
    ];
    for fw in baselines {
        for alg in [Algorithm::Bfs, Algorithm::Sssp] {
            let mut dev = sanitized_dev();
            match fw.run(&mut dev, &g, 0, alg) {
                Ok(_) => {
                    let rep = report(&dev);
                    assert!(
                        rep.is_clean(),
                        "{} {}:\n{}",
                        fw.name(),
                        alg.name(),
                        rep.summarize()
                    );
                }
                Err(e) => panic!("{} {} failed: {e}", fw.name(), alg.name()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Half 2: injected bugs are caught.
// ---------------------------------------------------------------------------

/// Finds the first error of `kind` or panics with the whole report.
fn expect_error(rep: &SanitizerReport, kind: FindingKind) -> &eta_sim::Finding {
    rep.errors
        .iter()
        .find(|f| f.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} error found; report:\n{}", rep.summarize()))
}

/// Bug 1: an out-of-bounds column index — the classic unvalidated
/// `col_idx[e]` read past the frontier array.
struct OobLoadKernel {
    data: DSlice,
    n: u32,
}

impl Kernel for OobLoadKernel {
    fn name(&self) -> &'static str {
        "oob_load"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        // BUG: reads data[tid + 8], sailing past the end of the slice.
        let mut idx = [0u32; 32];
        for (i, &t) in idx.iter_mut().zip(ids.iter()) {
            *i = t + 8;
        }
        w.load(self.data, &idx, mask);
    }
}

#[test]
fn detects_out_of_bounds_read() {
    let mut dev = sanitized_dev();
    let n = 256u32;
    let data = dev.mem.alloc_explicit(n as u64).unwrap();
    dev.mem.host_write(data, 0, &vec![1u32; n as usize]);
    let k = OobLoadKernel { data, n };
    dev.launch(&k, LaunchConfig::for_items(n, 64), 0);
    let rep = report(&dev);
    let f = expect_error(&rep, FindingKind::OutOfBounds);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.kernel, "oob_load");
    assert_eq!(f.slice_len, n as u64);
    assert!(f.index >= n as u64, "site index {} within bounds?", f.index);
    // All 32 overrunning threads fold into one finding (8 per trailing warp
    // of each of the 4 blocks).
    assert!(f.occurrences >= 8, "occurrences: {}", f.occurrences);
}

/// Bug 2: label relaxation with a plain store — warps of the same launch
/// overwrite each other's labels (the race `PullBfsKernel` had before it
/// switched to `atomic_min`).
struct NonAtomicRelaxKernel {
    labels: DSlice,
    n: u32,
}

impl Kernel for NonAtomicRelaxKernel {
    fn name(&self) -> &'static str {
        "non_atomic_relax"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        // BUG: every warp writes labels[tid % 32] with a plain store; the
        // same words are hit by every warp in the launch.
        let mut idx = [0u32; 32];
        for (i, &t) in idx.iter_mut().zip(ids.iter()) {
            *i = t % 32;
        }
        let vals = ids;
        w.store(self.labels, &idx, &vals, mask);
    }
}

#[test]
fn detects_global_race_between_warps() {
    let mut dev = sanitized_dev();
    let n = 512u32;
    let labels = dev.mem.alloc_explicit(32).unwrap();
    dev.mem.host_fill(labels, u32::MAX);
    let k = NonAtomicRelaxKernel { labels, n };
    dev.launch(&k, LaunchConfig::for_items(n, 128), 0);
    let rep = report(&dev);
    let f = expect_error(&rep, FindingKind::GlobalRace);
    assert_eq!(f.kernel, "non_atomic_relax");
    assert!(f.detail.contains("store"), "detail: {}", f.detail);
}

/// The fixed version of the same kernel: atomics on the shared words.
struct AtomicRelaxKernel {
    labels: DSlice,
    n: u32,
}

impl Kernel for AtomicRelaxKernel {
    fn name(&self) -> &'static str {
        "atomic_relax"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        let mut idx = [0u32; 32];
        for (i, &t) in idx.iter_mut().zip(ids.iter()) {
            *i = t % 32;
        }
        w.atomic_min(self.labels, &idx, &ids, mask);
    }
}

#[test]
fn atomic_relaxation_is_race_free() {
    let mut dev = sanitized_dev();
    let n = 512u32;
    let labels = dev.mem.alloc_explicit(32).unwrap();
    dev.mem.host_fill(labels, u32::MAX);
    dev.launch(
        &AtomicRelaxKernel { labels, n },
        LaunchConfig::for_items(n, 128),
        0,
    );
    let rep = report(&dev);
    assert!(rep.is_clean(), "{}", rep.summarize());
}

/// Bug 3: reading an allocation the host never initialized (a forgotten
/// `cudaMemcpy`/`host_write` of the frontier).
struct UninitReadKernel {
    data: DSlice,
    n: u32,
}

impl Kernel for UninitReadKernel {
    fn name(&self) -> &'static str {
        "uninit_read"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        w.load(self.data, &ids, mask);
    }
}

#[test]
fn detects_uninitialized_read() {
    let mut dev = sanitized_dev();
    let n = 128u32;
    let data = dev.mem.alloc_explicit(n as u64).unwrap(); // never written
    dev.launch(
        &UninitReadKernel { data, n },
        LaunchConfig::for_items(n, 64),
        0,
    );
    let rep = report(&dev);
    let f = expect_error(&rep, FindingKind::UninitRead);
    assert_eq!(f.kernel, "uninit_read");
    assert_eq!(f.index, 0, "first uninit word is the first read");
}

/// Bug 4: frontier-append without the dedup guard. Every thread grabs a
/// queue slot with an atomic, but because no visited-tag check filters
/// duplicates, the queue (sized for the deduplicated frontier) overflows —
/// a stale-tag bug surfacing as an out-of-bounds store.
struct StaleTagAppendKernel {
    counter: DSlice,
    queue: DSlice,
    queue_cap: u32,
    n: u32,
}

impl Kernel for StaleTagAppendKernel {
    fn name(&self) -> &'static str {
        "stale_tag_append"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        // BUG: the dedup test is skipped, so every thread appends.
        let zeros = [0u32; 32];
        let ones = [1u32; 32];
        let slots = w.atomic_add(self.counter, &zeros, &ones, mask);
        let _ = self.queue_cap; // sized for the deduplicated frontier
        w.store(self.queue, &slots, &ids, mask);
    }
}

#[test]
fn detects_queue_overflow_from_skipped_dedup() {
    let mut dev = sanitized_dev();
    let n = 256u32;
    let cap = 64u32; // what a deduplicated frontier would need
    let counter = dev.mem.alloc_explicit(1).unwrap();
    let queue = dev.mem.alloc_explicit(cap as u64).unwrap();
    dev.mem.host_fill(counter, 0);
    let k = StaleTagAppendKernel {
        counter,
        queue,
        queue_cap: cap,
        n,
    };
    dev.launch(&k, LaunchConfig::for_items(n, 64), 0);
    let rep = report(&dev);
    let f = expect_error(&rep, FindingKind::OutOfBounds);
    assert_eq!(f.kernel, "stale_tag_append");
    assert_eq!(f.slice_len, cap as u64);
    assert!(f.index >= cap as u64);
    // The first `cap` appends were fine; the remaining n - cap overflowed.
    assert_eq!(f.occurrences, (n - cap) as u64);
}

/// Bug 5: two warps of one block write the same shared-memory word without
/// any synchronization (a reduction missing its barrier discipline).
struct SharedRaceKernel {
    n: u32,
}

impl Kernel for SharedRaceKernel {
    fn name(&self) -> &'static str {
        "shared_race"
    }

    fn shared_words_per_block(&self, _t: u32) -> u64 {
        1
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        // BUG: every warp of the block stores its own value to shared[0].
        let zeros = [0u32; 32];
        w.store_shared(&zeros, &ids, mask);
    }
}

#[test]
fn detects_shared_memory_race_between_warps_of_a_block() {
    let mut dev = sanitized_dev();
    let n = 128u32; // 4 warps in one block
    dev.launch(
        &SharedRaceKernel { n },
        LaunchConfig {
            blocks: 1,
            threads_per_block: 128,
        },
        0,
    );
    let rep = report(&dev);
    let f = expect_error(&rep, FindingKind::SharedRace);
    assert_eq!(f.kernel, "shared_race");
    assert_eq!(f.addr, 0, "the raced shared word");
}
