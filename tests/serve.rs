//! Integration tests for the serving layer: the full registry → scheduler →
//! device-pool → report path, including the acceptance contract that source
//! batching strictly beats unbatched FIFO on the same trace.

use eta_graph::generate::{rmat, RmatConfig};
use eta_graph::reference;
use eta_serve::{
    poisson_trace, GraphRegistry, Policy, Request, ServeConfig, Service, WorkloadConfig,
};
use eta_sim::{GpuConfig, SanitizerMode};

fn registry(graphs: &[(&str, u32, usize, u64)]) -> GraphRegistry {
    let mut reg = GraphRegistry::new();
    for &(name, scale, edges, seed) in graphs {
        reg.insert(name, rmat(&RmatConfig::paper(scale, edges, seed)));
    }
    reg
}

fn two_tenants() -> (GraphRegistry, Vec<String>) {
    let reg = registry(&[("a", 10, 8_000, 1), ("b", 10, 8_000, 2)]);
    (reg, vec!["a".to_string(), "b".to_string()])
}

/// The tentpole claim: coalescing same-graph sources into one multi-BFS
/// launch strictly reduces the simulated makespan versus dispatching the
/// same trace one request at a time in FIFO order.
#[test]
fn batching_strictly_reduces_makespan_vs_unbatched_fifo() {
    let (reg, names) = two_tenants();
    // A rate high enough that requests pile up behind the device.
    let workload = WorkloadConfig {
        requests: 96,
        seed: 7,
        rate_per_s: 20_000.0,
        ..WorkloadConfig::default()
    };
    let trace = poisson_trace(&reg, &names, &workload);
    let batched = Service::new(&reg, ServeConfig::default()).run(&trace);
    let unbatched = Service::new(
        &reg,
        ServeConfig {
            max_batch: 1,
            policy: Policy::Fifo,
            ..ServeConfig::default()
        },
    )
    .run(&trace);
    assert_eq!(batched.completed, 96);
    assert_eq!(unbatched.completed, 96);
    assert!(batched.mean_batch_size() > 1.0);
    assert!(
        batched.makespan_ns < unbatched.makespan_ns,
        "batched makespan {} ns must be strictly below unbatched {} ns",
        batched.makespan_ns,
        unbatched.makespan_ns
    );
    // Batching also lifts sustained throughput.
    assert!(batched.throughput_qps > unbatched.throughput_qps);
}

/// Same registry + config + trace serialize to byte-identical JSON — the
/// determinism contract the CLI relies on.
#[test]
fn repeated_runs_serialize_byte_identically() {
    let (reg, names) = two_tenants();
    let workload = WorkloadConfig {
        requests: 60,
        seed: 7,
        rate_per_s: 8_000.0,
        interactive_slo_ns: Some(2_000_000),
        ..WorkloadConfig::default()
    };
    let run = || {
        let trace = poisson_trace(&reg, &names, &workload);
        let report = Service::new(&reg, ServeConfig::default()).run(&trace);
        serde_json::to_string(&serde_json::to_value(&report).unwrap()).unwrap()
    };
    let first = run();
    assert_eq!(first, run(), "same inputs must produce identical bytes");
    // And the bytes actually carry the acceptance metrics.
    assert!(first.contains("throughput_qps"));
    assert!(first.contains("utilization"));
}

/// A full served workload under the sanitizer's Full mode stays clean on
/// every device in the pool.
#[test]
fn served_workload_is_sanitizer_clean() {
    let (reg, names) = two_tenants();
    let workload = WorkloadConfig {
        requests: 40,
        seed: 7,
        rate_per_s: 10_000.0,
        ..WorkloadConfig::default()
    };
    let trace = poisson_trace(&reg, &names, &workload);
    let cfg = ServeConfig {
        devices: 2,
        gpu: GpuConfig::default_preset().with_sanitizer(SanitizerMode::Full),
        ..ServeConfig::default()
    };
    let mut service = Service::new(&reg, cfg);
    let report = service.run(&trace);
    assert_eq!(report.completed, 40);
    for w in service.workers() {
        let san = w.dev.sanitizer_report().expect("sanitizer attached");
        assert!(san.launches > 0, "device {} served no kernels", w.id);
        assert!(
            san.is_clean(),
            "device {} sanitizer findings:\n{}",
            w.id,
            san.summarize()
        );
    }
}

/// Under a device too small for both tenants, the pool evicts the idle
/// graph and every completed answer still matches the host reference.
#[test]
fn eviction_churn_keeps_answers_correct() {
    let reg = registry(&[("a", 10, 8_000, 1), ("b", 10, 8_000, 2)]);
    let names = vec!["a".to_string(), "b".to_string()];
    let one = eta_serve::DeviceWorker::footprint_bytes(
        reg.get("a").unwrap(),
        &etagraph::EtaConfig::paper(),
    );
    let workload = WorkloadConfig {
        requests: 24,
        seed: 3,
        rate_per_s: 500.0, // slow arrivals: ping-pong between tenants
        ..WorkloadConfig::default()
    };
    let trace = poisson_trace(&reg, &names, &workload);
    let cfg = ServeConfig {
        gpu: GpuConfig::gtx1080ti_scaled(one + one / 2),
        ..ServeConfig::default()
    };
    let mut service = Service::new(&reg, cfg);
    let report = service.run(&trace);
    assert_eq!(report.completed, 24, "rejections: {:?}", report.rejections);
    assert!(
        report.devices[0].evictions > 0,
        "alternating tenants on a 1.5x device must evict"
    );
    for r in &report.records {
        let levels = reference::bfs(reg.get(&r.graph).unwrap(), r.source);
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count() as u32;
        assert_eq!(r.reached, reached, "request {} on {}", r.id, r.graph);
    }
}

/// Per-request latency decomposition is internally consistent, and records
/// arrive sorted by request id.
#[test]
fn latency_decomposition_adds_up() {
    let (reg, names) = two_tenants();
    let workload = WorkloadConfig {
        requests: 50,
        seed: 9,
        rate_per_s: 6_000.0,
        ..WorkloadConfig::default()
    };
    let trace = poisson_trace(&reg, &names, &workload);
    let report = Service::new(&reg, ServeConfig::default()).run(&trace);
    assert_eq!(report.completed, 50);
    assert!(report.records.windows(2).all(|w| w[0].id < w[1].id));
    for r in &report.records {
        assert_eq!(
            r.queue_wait_ns + r.transfer_ns + r.compute_ns,
            r.latency_ns,
            "request {} phases must sum to its latency",
            r.id
        );
        assert!(r.batch_size >= 1 && r.batch_size <= 32);
    }
    let util = report.devices[0].utilization;
    assert!(util > 0.0 && util <= 1.0, "utilization {util}");
}

/// Hand-built trace: an unknown tenant, a queue overflow, and a timeout all
/// surface as typed rejections while the rest of the trace completes.
#[test]
fn rejections_are_typed_and_do_not_poison_the_run() {
    let reg = registry(&[("a", 10, 8_000, 1)]);
    let mk = |id: u32, graph: &str, arrival: u64| Request {
        id,
        graph: graph.to_string(),
        class: eta_serve::Priority::Batch,
        source: id % 100,
        arrival_ns: arrival,
        deadline_ns: None,
        timeout_ns: None,
    };
    let mut trace = vec![mk(0, "a", 0), mk(1, "ghost", 5)];
    let mut stale = mk(2, "a", 6);
    stale.timeout_ns = Some(1); // expires long before the device frees up
    trace.push(stale);
    // Burst past the 4-deep queue while request 0's launch is in flight.
    for id in 3..11 {
        trace.push(mk(id, "a", 10));
    }
    let cfg = ServeConfig {
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let report = Service::new(&reg, cfg).run(&trace);
    let reason_of = |id: u32| {
        report
            .rejections
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.reason)
    };
    assert_eq!(reason_of(1), Some(eta_serve::RejectReason::UnknownGraph));
    assert_eq!(reason_of(2), Some(eta_serve::RejectReason::TimedOut));
    assert!(
        report
            .rejections
            .iter()
            .any(|r| r.reason == eta_serve::RejectReason::QueueFull),
        "burst beyond queue capacity must bounce: {:?}",
        report.rejections
    );
    assert_eq!(
        report.completed as usize + report.rejections.len(),
        trace.len()
    );
    assert!(report.completed >= 4);
}
