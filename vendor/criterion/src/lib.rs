//! Offline shim of the `criterion` API surface this workspace's benches
//! use: `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It is a measurement harness, not a statistics engine: each benchmark
//! runs a short warmup, then a fixed number of timed batches, and reports
//! the per-iteration median to stdout. Good enough to keep `cargo bench`
//! compiling and producing comparable numbers offline; swap the real
//! criterion back in (networked environment) for confidence intervals.
//! See `vendor/README.md`.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_BATCHES: u32 = 2;
const MEASURED_BATCHES: u32 = 12;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &name.to_string(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample size is fixed in the shim; accepted for source compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation is accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (ignored by the shim's reporting).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    batch_times: Vec<Duration>,
    iters_per_batch: u32,
}

impl Bencher {
    /// Times `f`, amortized over a calibrated batch, for a fixed number of
    /// batches after warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Grow the batch until one batch takes ≳0.5 ms, so fast primitives
        // are measurable above timer resolution while slow simulations run
        // only a handful of times.
        let mut iters = 1u32;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if start.elapsed() > Duration::from_micros(500) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_batch = iters;
        for batch in 0..(WARMUP_BATCHES + MEASURED_BATCHES) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if batch >= WARMUP_BATCHES {
                self.batch_times.push(elapsed);
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut b = Bencher {
        batch_times: Vec::new(),
        iters_per_batch: 1,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    report(&label, &b);
}

fn report(label: &str, b: &Bencher) {
    if b.batch_times.is_empty() {
        println!("bench {label}: no measurements (closure never called iter)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .batch_times
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / f64::from(b.iters_per_batch))
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {label}: median {median:.1} ns/iter ({} batches x {} iters)",
        b.batch_times.len(),
        b.iters_per_batch
    );
}

/// Declares a benchmark entry function running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
