//! Offline shim of the `crossbeam` API surface this workspace uses:
//! [`scope`] with `Scope::spawn` and `ScopedJoinHandle::join`.
//!
//! Since Rust 1.63 the standard library provides scoped threads, so the
//! shim is a thin adapter keeping `crossbeam`'s signatures (the spawned
//! closure receives the scope; `scope` returns a `Result` capturing child
//! panics) over `std::thread::scope`. See `vendor/README.md`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// The payload of a panicked scope or child thread.
pub type ScopeResult<T> = thread::Result<T>;

/// A handle for spawning scoped threads, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope itself (callers here ignore it as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread; `Err` carries the panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Creates a scope for spawning borrowing threads.
///
/// Returns `Err` with the panic payload if the closure or any unjoined
/// child thread panicked — crossbeam's contract — by catching the panic
/// that `std::thread::scope` re-raises.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn spawned_threads_see_borrowed_state() {
        let counter = AtomicU32::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_thread_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 21u32 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn unjoined_child_panic_surfaces_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
