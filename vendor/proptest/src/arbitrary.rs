//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
