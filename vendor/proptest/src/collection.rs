//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(element, size_range)`, as in real proptest.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
