//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Provides deterministic random-input testing with the same source syntax
//! as proptest: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range and tuple strategies, `prop_map`/`prop_flat_map`,
//! `proptest::collection::vec`, `any::<T>()` and `sample::Index`.
//!
//! Differences from the real crate, by design (see `vendor/README.md`):
//!
//! * **No shrinking.** A failing case reports its case number and message;
//!   inputs are reproducible because the RNG is seeded from the test name
//!   and case index alone.
//! * **No persistence.** There is no failure regression file.
//! * `PROPTEST_CASES` overrides the per-test case count, as upstream.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Deterministic splitmix64 stream used to generate test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream from the test name and case index, so every run of a
    /// given binary explores the same inputs.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound = 0` means the full u64 range.
    pub fn below(&mut self, bound: u64) -> u64 {
        let v = self.next_u64();
        if bound == 0 {
            v
        } else {
            v % bound
        }
    }
}

/// Runs one named test: samples each strategy `cases` times and executes the
/// body, panicking with the case number on the first failure.
///
/// This is the support function behind [`proptest!`]; the macro passes the
/// body as a closure returning `Err(message)` on a failed `prop_assert!`.
pub fn run_cases<F>(test_name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = test_runner::resolve_cases(cases);
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(msg) = body(&mut rng) {
            panic!("proptest `{test_name}`: case {case} of {cases} failed: {msg}");
        }
    }
}

/// `proptest! { ... }`: defines `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body without aborting the whole
/// process on failure (the harness reports the failing case instead).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        let mut c = crate::TestRng::for_case("t", 1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline end to end: ranges, tuples, vec, map.
        #[test]
        fn generated_values_respect_bounds(x in 1u32..50, (a, b) in (0u64..10, 0u64..10)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(a < 10 && b < 10, "a={} b={}", a, b);
        }

        #[test]
        fn vec_strategy_respects_size_range(v in crate::collection::vec(0u32..5, 2..7usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_sees_upstream_value((n, i) in (1usize..20).prop_flat_map(|n| {
            (crate::strategy::just(n), crate::collection::vec(0u32..(n as u32), 1..4).prop_map(|v| v[0] as usize))
        })) {
            prop_assert!(i < n);
        }

        #[test]
        fn index_maps_into_range(idx in any::<crate::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }
}
