//! Sampling helpers (`proptest::sample::Index`).

/// An abstract index into a collection of not-yet-known size.
///
/// Drawn via `any::<Index>()`; `index(len)` maps it uniformly into
/// `0..len`, letting one generated value pick an element of any collection.
#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Index {
        Index(raw)
    }

    /// Maps this index into `0..len`. Panics if `len == 0`, like upstream.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an Index from an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_uniform_modulo() {
        assert_eq!(Index(10).index(3), 1);
        assert_eq!(Index(0).index(5), 0);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn index_rejects_empty() {
        Index(1).index(0);
    }
}
