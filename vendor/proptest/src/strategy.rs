//! Strategies: composable recipes for generating test inputs.

use crate::TestRng;
use std::ops::Range;

/// A recipe for producing values of `Self::Value` from the test RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampling function, which is sufficient for the invariant tests in
/// this workspace.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let upstream = self.inner.sample(rng);
        (self.f)(upstream).sample(rng)
    }
}

/// A strategy that always yields a clone of one value (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Convenience constructor for [`Just`].
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just(value)
}

macro_rules! impl_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // width == 0 encodes the full u64 range (e.g. 0..u64::MAX
                // leaves exactly one value uncovered; close enough for a
                // sampler without shrinking).
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8 u16 u32 u64 usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(width) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8 i16 i32 i64 isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (5u32..9).sample(&mut rng);
            assert!((5..9).contains(&v));
            let s = (-3i32..3).sample(&mut rng);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = TestRng::for_case("full", 0);
        // 0..u64::MAX has width u64::MAX, exercised via the wrap-around path.
        let _ = (0u64..u64::MAX).sample(&mut rng);
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let strat = (0u32..4, 10u64..12).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((10..16).contains(&v));
        }
    }
}
