//! Test-runner configuration.

/// Per-`proptest!`-block configuration. Only `cases` is modelled.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test explores.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Applies the `PROPTEST_CASES` environment override, as upstream does.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => n,
        None => configured,
    }
}
