//! Offline shim of the `serde` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free replacement (see `vendor/README.md`).
//! Only what the repo actually needs is provided: a [`Serialize`] trait that
//! converts a value into an owned JSON [`value::Value`], impls for the
//! primitive/container types our serialized structs contain, and (behind the
//! `derive` feature) a `#[derive(Serialize)]` macro supporting structs with
//! named fields, unit-only enums and the `#[serde(skip)]` attribute.
//!
//! This is intentionally *not* the real serde data model: there is no
//! `Serializer` abstraction and no `Deserialize`. If a future change needs
//! more of serde, extend this shim (or restore the real dependency in a
//! networked environment) rather than working around it.

pub mod value;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

use value::{Map, Number, Value};

/// Conversion into the shim's JSON value tree.
///
/// The real serde `Serialize` is generic over a `Serializer`; every consumer
/// in this workspace ultimately serializes to JSON, so the shim collapses
/// the abstraction to "produce a [`Value`]".
pub trait Serialize {
    fn to_json(&self) -> Value;
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_serialize_unsigned!(u8 u16 u32 u64 usize);

macro_rules! impl_serialize_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_serialize_signed!(i8 i16 i32 i64 isize);

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_serialize_tuple!(A.0);
impl_serialize_tuple!(A.0, B.1);
impl_serialize_tuple!(A.0, B.1, C.2);
impl_serialize_tuple!(A.0, B.1, C.2, D.3);

impl Serialize for Map {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_json(), Value::Number(Number::PosInt(3)));
        assert_eq!((-2i32).to_json(), Value::Number(Number::NegInt(-2)));
        assert_eq!(1.5f64.to_json(), Value::Number(Number::Float(1.5)));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("x".to_json(), Value::String("x".into()));
        assert_eq!(Option::<u32>::None.to_json(), Value::Null);
    }

    #[test]
    fn containers_serialize_elementwise() {
        let v = vec![1u32, 2, 3].to_json();
        assert_eq!(v.as_array().unwrap().len(), 3);
        assert_eq!(v[2].as_u64(), Some(3));
    }
}
