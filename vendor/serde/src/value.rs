//! The JSON value tree shared by the `serde` and `serde_json` shims.
//!
//! `serde_json` re-exports these types; they live here so the `Serialize`
//! trait can mention them without a circular dependency between the shims.

use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(u) => Some(u as f64),
            Number::NegInt(i) => Some(i as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An insertion-ordered string-keyed object.
///
/// The real `serde_json::Map` is a BTree/index map; insertion order is good
/// enough for the artifact JSON this workspace emits, and keeps the shim
/// dependency-free.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts `key`, replacing and returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON value.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Renders compact JSON into `out`.
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders two-space-indented JSON into `out` at the given nesting depth.
    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    pub(crate) fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        if pretty {
            self.write_pretty(&mut out, 0);
        } else {
            self.write_compact(&mut out);
        }
        out
    }
}

/// Renders two-space-indented JSON (used by the `serde_json` shim).
pub fn pretty(v: &Value) -> String {
    v.render(true)
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        // `{:?}` keeps a trailing `.0` on integral floats, matching
        // serde_json; non-finite floats have no JSON form and become null.
        Number::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys (or non-objects) index to `Null`, as in serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $conv:ident),+ $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv() == Some(*other as _)
            }
        }
    )+};
}
impl_value_eq_num!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64, f64 => as_f64);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_accessors() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Number(Number::PosInt(7)));
        let v = Value::Object(m);
        assert_eq!(v["a"].as_u64(), Some(7));
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn numbers_compare_across_variants() {
        assert_eq!(Number::PosInt(5), Number::NegInt(5));
        assert_ne!(Number::NegInt(-1), Number::PosInt(1));
        assert_eq!(Number::Float(2.0), Number::Float(2.0));
    }

    #[test]
    fn compact_rendering_escapes_and_formats() {
        let v = Value::Array(vec![
            Value::String("a\"b\n".into()),
            Value::Number(Number::Float(1.0)),
            Value::Null,
        ]);
        assert_eq!(v.to_string(), "[\"a\\\"b\\n\",1.0,null]");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Bool(false));
        let old = m.insert("k".into(), Value::Bool(true));
        assert_eq!(old, Some(Value::Bool(false)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&Value::Bool(true)));
    }
}
