//! Offline shim of serde's `#[derive(Serialize)]`.
//!
//! Implements exactly the subset this workspace derives on: structs with
//! named fields and enums whose variants are all unit-like. The only
//! recognized helper attribute is `#[serde(skip)]` on a struct field.
//! Anything else (tuple structs, generics, data-carrying variants) is a
//! compile error pointing here, so a future need is noticed rather than
//! silently mis-serialized.
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable
//! offline): it walks the raw `TokenTree`s, extracts field/variant names,
//! and emits the impl by formatting source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported by the vendored derive"
        ));
    }

    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| {
            format!("serde shim: `{name}` has no braced body (tuple/unit types unsupported)")
        })?;

    match kind.as_str() {
        "struct" => expand_struct(&name, body),
        "enum" => expand_enum(&name, body),
        other => Err(format!("serde shim: cannot derive Serialize for `{other}`")),
    }
}

/// Advances past any number of outer attributes (`#[...]`), returning
/// whether one of them was exactly `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            skip |= is_serde_skip(&g.stream());
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

fn is_serde_skip(attr: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expand_struct(name: &str, body: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skipped = skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde shim: unexpected token in `{name}`: {other:?}"
                ))
            }
        };
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!(
                "serde shim: `{name}` looks like a tuple struct; only named fields are supported"
            ));
        }
        i += 1;
        skip_type(&tokens, &mut i);
        if !skipped {
            fields.push(field);
        }
    }

    let mut inserts = String::new();
    for f in &fields {
        inserts.push_str(&format!(
            "m.insert(::std::string::String::from({f:?}), \
             ::serde::Serialize::to_json(&self.{f}));\n"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::value::Value {{\n\
         let mut m = ::serde::value::Map::new();\n\
         {inserts}\
         ::serde::value::Value::Object(m)\n\
         }}\n}}\n"
    );
    out.parse().map_err(|e| format!("serde shim: {e:?}"))
}

fn expand_enum(name: &str, body: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde shim: unexpected token in `{name}`: {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim: variant `{name}::{variant}` carries data or a discriminant; \
                     only unit variants are supported"
                ))
            }
        }
        variants.push(variant);
    }

    let mut arms = String::new();
    for v in &variants {
        arms.push_str(&format!(
            "{name}::{v} => ::serde::value::Value::String(::std::string::String::from({v:?})),\n"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::value::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    );
    out.parse().map_err(|e| format!("serde shim: {e:?}"))
}

/// Advances past a field's type: everything up to the next comma that is
/// outside `<...>` (commas inside parens/brackets are inside `Group`s and
/// never seen at this level).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}
