//! Offline shim of the `serde_json` API surface this workspace uses:
//! [`Value`]/[`Map`]/[`Number`], [`json!`], [`to_value`], [`to_string`] and
//! [`to_string_pretty`]. See `vendor/README.md` for scope and rationale.
//!
//! The value types live in the `serde` shim (so its `Serialize` trait can
//! name them) and are re-exported here under their familiar paths.

use std::fmt;

pub use serde::value::{Map, Number, Value};

/// Serialization error. The shim's tree-to-text rendering is total, so this
/// is never actually produced; it exists to keep call-site signatures
/// (`Result` + `unwrap`/`?`) source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Renders compact JSON.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_with(false))
}

/// Renders two-space-indented JSON.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_with(true))
}

/// Rendering entry points for this crate, kept off the public `Value` type.
trait Render {
    fn render_with(&self, pretty: bool) -> String;
}

impl Render for Value {
    fn render_with(&self, pretty: bool) -> String {
        if pretty {
            // `Display` renders compact; pretty needs the dedicated path.
            serde::value::pretty(self)
        } else {
            self.to_string()
        }
    }
}

#[doc(hidden)]
pub mod __private {
    pub fn to_val<T: ?Sized + serde::Serialize>(v: &T) -> crate::Value {
        v.to_json()
    }
}

/// Construct a [`Value`] from a JSON-like literal.
///
/// A reimplementation of serde_json's TT-muncher covering the forms used in
/// this workspace: object/array literals, `null`/`true`/`false`, and
/// arbitrary `Serialize` expressions in value position.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array muncher -------------------------------------------------
    (@array [$($elems:expr,)*]) => { ::std::vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { ::std::vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object muncher ------------------------------------------------
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current key/value pair, then continue after the comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final key/value pair.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value forms that must be matched at the token level, before `expr`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Value is a general expression followed by a comma...
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // ...or the last expression in the literal.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points --------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::__private::to_val(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_structures() {
        let n = 3u32;
        let v = json!({
            "name": "bfs",
            "n": n,
            "ok": true,
            "missing": null,
            "nested": { "xs": [1, 2, n + 1] },
            "list": [true, "s", { "k": 0.5 }],
        });
        assert_eq!(v["name"].as_str(), Some("bfs"));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
        assert_eq!(v["nested"]["xs"][2].as_u64(), Some(4));
        assert_eq!(v["list"][2]["k"].as_f64(), Some(0.5));
    }

    #[test]
    fn json_macro_accepts_expressions_and_collections() {
        let items: Vec<u64> = vec![4, 5, 6];
        let v = json!({ "items": items.iter().map(|&x| x * 2).collect::<Vec<_>>() });
        let arr = v["items"].as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(8));
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = json!({ "a": [1], "b": {} });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
        assert_eq!(to_string(&v).unwrap(), "{\"a\":[1],\"b\":{}}");
    }

    #[test]
    fn to_value_round_trips_serialize_types() {
        let v = to_value(vec![1u32, 2]).unwrap();
        assert_eq!(v[1].as_u64(), Some(2));
    }
}
